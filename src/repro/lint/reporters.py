"""Reporters (human / JSON) and the findings baseline.

The JSON report is the machine interface: CI uploads it as an artifact and
``--baseline`` consumes a reduced form of it.  Baselines are keyed by
line-number-insensitive fingerprints (``rule::path::message``) with
multiplicity, so unrelated edits that shift code downward do not invalidate
a recorded baseline, while a *new* instance of an already-baselined finding
in the same file still fails (the count grows past the recorded one).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, TextIO

from repro.lint.rules import Finding, RULES
from repro.lint.walker import LintReport

BASELINE_VERSION = 1
REPORT_VERSION = 1


def render_human(report: LintReport, stream: TextIO, *,
                 show_suppressed: bool = False) -> None:
    """One ``path:line:col: RULE message`` line per active finding."""
    for finding in report.active:
        stream.write(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.message}\n")
    if show_suppressed:
        for finding in report.suppressed:
            stream.write(
                f"{finding.path}:{finding.line}:{finding.col + 1}: "
                f"{finding.rule} [suppressed: {finding.reason}] "
                f"{finding.message}\n")
    active, suppressed = len(report.active), len(report.suppressed)
    stream.write(
        f"{active} finding{'s' if active != 1 else ''} "
        f"({suppressed} suppressed) in {report.files_checked} "
        f"file{'s' if report.files_checked != 1 else ''}\n")


def _finding_dict(finding: Finding) -> Dict[str, object]:
    data: Dict[str, object] = {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.suppressed:
        data["suppressed"] = True
        data["reason"] = finding.reason
    return data


def report_json(report: LintReport) -> Dict[str, object]:
    """The full machine-readable report (CI artifact)."""
    return {
        "version": REPORT_VERSION,
        "files_checked": report.files_checked,
        "rules": {rule_id: rule.summary
                  for rule_id, rule in sorted(RULES.items())},
        "findings": [_finding_dict(f) for f in report.active],
        "suppressed": [_finding_dict(f) for f in report.suppressed],
    }


def render_json(report: LintReport, stream: TextIO) -> None:
    json.dump(report_json(report), stream, indent=2, sort_keys=False)
    stream.write("\n")


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def baseline_from(report: LintReport) -> Dict[str, object]:
    counts = Counter(f.fingerprint for f in report.active)
    return {
        "version": BASELINE_VERSION,
        "findings": {fp: counts[fp] for fp in sorted(counts)},
    }


def write_baseline(report: LintReport, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(baseline_from(report), handle, indent=2)
        handle.write("\n")


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> allowed count.  Raises ValueError on bad files."""
    with path.open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    if (not isinstance(data, dict)
            or data.get("version") != BASELINE_VERSION
            or not isinstance(data.get("findings"), dict)):
        raise ValueError(
            f"{path} is not a version-{BASELINE_VERSION} lint baseline")
    findings = data["findings"]
    if not all(isinstance(k, str) and isinstance(v, int)
               for k, v in findings.items()):
        raise ValueError(f"{path} has malformed baseline entries")
    return dict(findings)


def apply_baseline(report: LintReport,
                   allowed: Dict[str, int]) -> List[Finding]:
    """Active findings *not* covered by the baseline.

    Findings sharing a fingerprint are budgeted: the first ``allowed[fp]``
    instances (in report order) pass, later ones are new.
    """
    budget = dict(allowed)
    new: List[Finding] = []
    for finding in report.active:
        fp = finding.fingerprint
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
        else:
            new.append(finding)
    return new


__all__ = [
    "apply_baseline",
    "baseline_from",
    "load_baseline",
    "render_human",
    "render_json",
    "report_json",
    "write_baseline",
]
