"""Per-line suppression comments: ``# lint: ignore[RULE-ID] reason``.

A finding is intentional only if the line that produced it (or the line
directly above, for statements that do not fit a trailing comment) carries a
suppression naming its rule id *and* a written reason.  The reason is
mandatory -- a bare ``# lint: ignore[DET001]`` is itself reported (LNT001),
because an unexplained exception is indistinguishable from a silenced bug
two PRs later.  Suppressions that never match a finding are reported too
(LNT002): they are either stale (the violation was fixed -- delete the
comment) or typo'd (the violation is live but unshielded).

Multiple rules may share one comment: ``# lint: ignore[ARCH001,DET001]
reason``.  Rule ids must exist in the registry (LNT003 otherwise), so a
misspelled id cannot silently suppress nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: A hash sign, then ``lint: ignore[ID1,ID2]``, then the free-text reason.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\s-]*)\]\s*(.*)$")


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Rules of findings this suppression actually shielded.
    used_by: List[str] = field(default_factory=list)

    @property
    def used(self) -> bool:
        return bool(self.used_by)


@dataclass
class SuppressionIndex:
    """All suppressions of one file, queryable by (rule, line)."""

    by_line: Dict[int, Suppression] = field(default_factory=dict)

    def find(self, rule: str, line: int) -> "Suppression | None":
        """The suppression shielding ``rule`` at ``line``, if any.

        Checks the finding's own line first, then the line above it (for
        ``with``/``for`` headers and long calls where a trailing comment
        will not fit).
        """
        for candidate_line in (line, line - 1):
            supp = self.by_line.get(candidate_line)
            if supp is not None and rule in supp.rules:
                return supp
        return None

    def all(self) -> List[Suppression]:
        return [self.by_line[line] for line in sorted(self.by_line)]


def _comments(source_lines: List[str]) -> Iterator[Tuple[int, str]]:
    """(line, text) of every *comment* token in the file.

    Tokenizing (rather than regex-scanning raw lines) keeps the pattern
    from matching inside strings and docstrings -- this module's own
    documentation would otherwise suppress itself.  On files the tokenizer
    rejects (syntax errors mid-file), whatever comments were tokenized
    before the error still count.
    """
    text = "\n".join(source_lines)
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def scan_suppressions(source_lines: List[str]) -> SuppressionIndex:
    """Parse every suppression comment in a file."""
    index = SuppressionIndex()
    for lineno, comment in _comments(source_lines):
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            token.strip() for token in match.group(1).split(",")
            if token.strip())
        reason = match.group(2).strip()
        index.by_line[lineno] = Suppression(
            line=lineno, rules=rules, reason=reason)
    return index


__all__ = ["Suppression", "SuppressionIndex", "scan_suppressions"]
