"""Multi-tenant serving simulator over the simulation farm.

``repro.serve`` turns the batched simulation farm into a *serving* study:
how many requests per second can a pool of RedMulE clusters sustain, at what
latency, for which tenant mix?

* :mod:`repro.serve.requests` -- tenants, per-tenant model mixes, and the
  deterministic streaming request generator (Poisson, diurnal and bursty
  MMPP arrival processes, lazily merged across tenants);
* :mod:`repro.serve.scheduler` -- the event-driven, dependency-aware list
  scheduler dispatching ready graph nodes onto free clusters, with a
  per-program service-time memo so warm models never re-enter the farm;
* :mod:`repro.serve.loop` -- the continuous request-granularity serving
  loop: SLO-aware admission control with tenant fairness, queue/p99-driven
  autoscaling pools, online precision routing, and continuous batching of
  LLM decode sessions (join/leave at step boundaries), sustaining 10^6+
  simulated requests at interactive wall-clock;
* :mod:`repro.serve.report` -- latency percentiles (p50/p95/p99) via exact
  or streaming (reservoir / P-square) estimators, throughput, utilisation
  and per-tenant breakdowns.
"""

from repro.serve.loop import (
    AdmissionPolicy,
    AutoscalePolicy,
    ContinuousServer,
)
from repro.serve.report import (
    ContinuousReport,
    LatencyStats,
    P2Quantile,
    ReservoirSampler,
    ServePoolStats,
    ServeReport,
    StreamingLatencyStats,
    TenantReport,
    percentile,
)
from repro.serve.requests import (
    ARRIVAL_KINDS,
    DEFAULT_FREQUENCY_HZ,
    ArrivalSpec,
    DecodeSessionSpec,
    ModelSpec,
    Request,
    RequestGenerator,
    TenantSpec,
    decode_burst,
    decode_session_stream,
)
from repro.serve.scheduler import ScheduledNode, ServingSimulator

__all__ = [
    "ARRIVAL_KINDS",
    "DEFAULT_FREQUENCY_HZ",
    "AdmissionPolicy",
    "ArrivalSpec",
    "AutoscalePolicy",
    "ContinuousReport",
    "ContinuousServer",
    "DecodeSessionSpec",
    "LatencyStats",
    "ModelSpec",
    "P2Quantile",
    "Request",
    "RequestGenerator",
    "ReservoirSampler",
    "ScheduledNode",
    "ServePoolStats",
    "ServeReport",
    "ServingSimulator",
    "StreamingLatencyStats",
    "TenantReport",
    "TenantSpec",
    "decode_burst",
    "decode_session_stream",
    "percentile",
]
