"""Multi-tenant serving simulator over the simulation farm.

``repro.serve`` turns the batched simulation farm into a *serving* study:
how many requests per second can a pool of RedMulE clusters sustain, at what
latency, for which tenant mix?

* :mod:`repro.serve.requests` -- tenants, per-tenant model mixes, and the
  deterministic Poisson request generator;
* :mod:`repro.serve.scheduler` -- the event-driven, dependency-aware list
  scheduler dispatching ready graph nodes onto free clusters, timing every
  dispatch wave through one batched :meth:`SimulationFarm.run` call;
* :mod:`repro.serve.report` -- latency percentiles (p50/p95/p99),
  throughput, per-cluster utilisation and per-tenant breakdowns.
"""

from repro.serve.report import (
    LatencyStats,
    ServeReport,
    TenantReport,
    percentile,
)
from repro.serve.requests import (
    DEFAULT_FREQUENCY_HZ,
    ModelSpec,
    Request,
    RequestGenerator,
    TenantSpec,
)
from repro.serve.scheduler import ScheduledNode, ServingSimulator

__all__ = [
    "DEFAULT_FREQUENCY_HZ",
    "LatencyStats",
    "ModelSpec",
    "Request",
    "RequestGenerator",
    "ScheduledNode",
    "ServeReport",
    "ServingSimulator",
    "TenantReport",
    "TenantSpec",
    "percentile",
]
