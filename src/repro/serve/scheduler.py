"""Multi-tenant serving simulator: dependency-aware list scheduling.

The simulator models a pool of ``n_clusters`` identical accelerator clusters
serving a stream of requests, each request being one lowered workload graph
(:class:`~repro.graph.lower.LoweredProgram`).  Scheduling is event-driven
list scheduling at *node* granularity:

* a node becomes **ready** when the request has arrived and all its graph
  dependencies have completed;
* whenever clusters are idle, the oldest ready nodes are dispatched onto
  them (FIFO over (arrival, request, topological index) -- deterministic);
* a dispatched wave's accelerator jobs are timed through the
  :class:`~repro.farm.SimulationFarm` in **one** ``run()`` call, so the
  shape-keyed timing cache makes repeated requests of the same models
  nearly free to simulate;
* a GEMM node occupies its cluster for the sum of its jobs' cycles (plus
  the configurable per-job offload cost); elementwise nodes run on the
  host cores -- they never occupy a cluster, cost
  ``elements * elementwise_cycles_per_element`` (0 by default --
  negligible next to the GEMMs) and appear in the trace with cluster
  ``-1``.

With one cluster and one request this degenerates to serial execution, so
the makespan equals the serial farm timing of the same graph
(:meth:`SimulationFarm.time_program`) -- the subsystem's conservation law,
pinned by the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.farm import SimulationFarm, default_farm
from repro.graph.ir import WorkloadGraph
from repro.graph.lower import LoweredProgram
from repro.redmule.config import RedMulEConfig
from repro.serve.report import LatencyStats, ServeReport, TenantReport
from repro.serve.requests import DEFAULT_FREQUENCY_HZ, Request

#: Event kinds, ordered so completions at a time t free their cluster before
#: the dispatcher runs and arrivals are seen in the same pass.
_EVENT_COMPLETION = 0
_EVENT_ARRIVAL = 1


@dataclass(frozen=True)
class ScheduledNode:
    """Trace record: one node's placement on the pool.

    ``cluster`` is ``-1`` for elementwise nodes, which run on the host
    cores rather than on an accelerator cluster.
    """

    request_id: int
    node: str
    cluster: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        """Busy cycles on the cluster."""
        return self.end_cycle - self.start_cycle


class _RequestState:
    """Progress of one in-flight request."""

    __slots__ = ("request", "program", "remaining_deps", "dependents",
                 "unfinished", "finish_cycle")

    def __init__(self, request: Request, program: LoweredProgram) -> None:
        self.request = request
        self.program = program
        index_of = {node.name: i for i, node in enumerate(program.nodes)}
        self.remaining_deps = [len(node.deps) for node in program.nodes]
        self.dependents: List[List[int]] = [[] for _ in program.nodes]
        for node_index, node in enumerate(program.nodes):
            for dep in node.deps:
                self.dependents[index_of[dep]].append(node_index)
        self.unfinished = len(program.nodes)
        self.finish_cycle: Optional[int] = None


class ServingSimulator:
    """Serve lowered workload graphs on a pool of simulated clusters.

    Parameters
    ----------
    n_clusters:
        Pool size.  Every cluster is an instance of ``config`` (the farm's
        configuration when a farm is passed).
    farm:
        Timing service shared by the pool (default: the process-wide
        :func:`repro.farm.default_farm`); repeated shapes across requests,
        models and simulations hit its cache.
    backend:
        Per-call farm backend override (``"engine"``/``"model"``/
        ``"analytic"`` -- the last routes every job through the closed-form
        model, which is what makes serving capacity planning cheap enough
        to embed in a design-space sweep); ``None`` keeps the farm's own
        routing policy.
    offload_cycles_per_job:
        Core-side cost charged per accelerator job (register programming),
        matching :meth:`SimulationFarm.time_program`'s parameter.
    elementwise_cycles_per_element:
        Host-core cost of elementwise nodes (which never occupy a
        cluster); the default 0 models them as hidden behind accelerator
        work.
    tile:
        Lower request graphs in tiled mode (GEMMs split through the TCDM
        tiling planner) instead of whole-GEMM jobs.
    keep_trace:
        Record a :class:`ScheduledNode` per dispatched node (tests and
        debugging; large runs should leave this off).
    """

    def __init__(
        self,
        n_clusters: int = 1,
        farm: Optional[SimulationFarm] = None,
        config: Optional[RedMulEConfig] = None,
        backend: Optional[str] = None,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        offload_cycles_per_job: float = 0.0,
        elementwise_cycles_per_element: float = 0.0,
        tile: bool = False,
        keep_trace: bool = False,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("the pool needs at least one cluster")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if offload_cycles_per_job < 0 or elementwise_cycles_per_element < 0:
            raise ValueError("per-job and per-element costs must be >= 0")
        self.n_clusters = n_clusters
        self.farm = farm if farm is not None else default_farm(config)
        self.backend = backend
        self.frequency_hz = frequency_hz
        self.offload_cycles_per_job = offload_cycles_per_job
        self.elementwise_cycles_per_element = elementwise_cycles_per_element
        self.tile = tile
        self.keep_trace = keep_trace
        self.trace: List[ScheduledNode] = []
        #: Per-precision farms, lazily derived from the base farm (same
        #: architecture, same shared timing cache, different element
        #: format).  Mixed-precision tenant mixes dispatch each job to the
        #: farm whose line geometry matches its graph's precision.
        self._farms: Dict[str, SimulationFarm] = {self.farm.config.format:
                                                  self.farm}
        #: Lowered programs memoised per graph (keyed by the graph object
        #: itself -- identity semantics, and the reference keeps the graph
        #: alive so a recycled object id can never alias a different
        #: model).  Shared ModelSpec graphs are lowered once per simulator,
        #: not once per request.
        self._programs: Dict[WorkloadGraph, LoweredProgram] = {}

    # -- lowering ------------------------------------------------------------
    def _program_for(self, graph: WorkloadGraph) -> LoweredProgram:
        program = self._programs.get(graph)
        if program is None:
            program = graph.lower(config=self.farm.config, tile=self.tile)
            self._programs[graph] = program
        return program

    def _farm_for(self, precision: str) -> SimulationFarm:
        """The timing farm serving jobs of one element precision."""
        farm = self._farms.get(precision)
        if farm is None:
            base = self.farm
            farm = SimulationFarm(
                config=replace(base.config, format=precision),
                backend=base.backend,
                engine_macs_threshold=base.engine_macs_threshold,
                max_workers=1,
                arithmetic=base.arithmetic,
                cache=base.cache,
                max_cycles=base.max_cycles,
            )
            self._farms[precision] = farm
        return farm

    # -- node timing ---------------------------------------------------------
    def _time_gemm_wave(
        self, wave: Sequence[Tuple[_RequestState, int]]
    ) -> List[int]:
        """Cluster service time of every GEMM node in a dispatch wave.

        All accelerator jobs of the wave go through the farm in one batched
        ``run()`` call per element precision (one cache lookup pass, misses
        simulated together); single-precision waves -- the common case --
        stay a single call.
        """
        jobs = []
        spans = []
        job_precision: List[str] = []
        for state, node_index in wave:
            node = state.program.nodes[node_index]
            spans.append((len(jobs), len(node.jobs)))
            precision = state.program.precision
            jobs.extend(node.jobs)
            job_precision.extend([precision] * len(node.jobs))

        results: List[Optional[object]] = [None] * len(jobs)
        by_precision: Dict[str, List[int]] = {}
        for index, precision in enumerate(job_precision):
            by_precision.setdefault(precision, []).append(index)
        for precision, indices in by_precision.items():
            batch = self._farm_for(precision).run(
                [jobs[i] for i in indices], backend=self.backend
            )
            for i, result in zip(indices, batch):
                results[i] = result

        durations = []
        for (state, node_index), (offset, count) in zip(wave, spans):
            cycles = sum(result.cycles
                         for result in results[offset:offset + count])
            cycles += self.offload_cycles_per_job * count
            durations.append(int(round(cycles)))
        return durations

    def _elementwise_duration(self, node) -> int:
        """Host-core cycles of one elementwise node."""
        return int(round(self.elementwise_cycles_per_element * node.elements))

    # -- simulation ----------------------------------------------------------
    def simulate(self, requests: Iterable[Request],
                 scenario: str = "serve") -> ServeReport:
        """Run the event-driven simulation over a request stream."""
        requests = sorted(requests,
                          key=lambda r: (r.arrival_cycle, r.request_id))
        states = [_RequestState(request, self._program_for(request.graph))
                  for request in requests]
        if self.keep_trace:
            self.trace = []

        # Event heap entries: (cycle, kind, sequence, state index, node
        # index, cluster).  Completions sort before arrivals at the same
        # cycle so a freed cluster is reusable immediately.
        events: List[Tuple[int, int, int, int, int, int]] = []
        sequence = 0
        for state_index, state in enumerate(states):
            heapq.heappush(events, (state.request.arrival_cycle,
                                    _EVENT_ARRIVAL, sequence, state_index,
                                    -1, -1))
            sequence += 1

        # Ready queues: (arrival, request index, node index) -- FIFO with
        # deterministic tie-breaks.  GEMM nodes compete for clusters;
        # elementwise nodes run on the host cores and are never gated on
        # the pool.
        ready_gemm: List[Tuple[int, int, int]] = []
        ready_host: List[Tuple[int, int, int]] = []
        idle: List[int] = list(range(self.n_clusters))
        heapq.heapify(idle)
        busy = [0 for _ in range(self.n_clusters)]
        makespan = 0

        cache_stats = self.farm.cache.stats
        hits0, misses0 = cache_stats.hits, cache_stats.misses
        jobs_timed = 0
        now = 0

        def mark_ready(state_index: int, node_index: int) -> None:
            state = states[state_index]
            queue = (ready_gemm if state.program.nodes[node_index].is_gemm
                     else ready_host)
            heapq.heappush(queue, (state.request.arrival_cycle, state_index,
                                   node_index))

        def release(state_index: int, node_index: int) -> None:
            """Mark newly-ready nodes of a request."""
            state = states[state_index]
            for dependent in state.dependents[node_index]:
                state.remaining_deps[dependent] -= 1
                if state.remaining_deps[dependent] == 0:
                    mark_ready(state_index, dependent)

        def complete_later(state_index: int, node_index: int, cluster: int,
                           end: int) -> None:
            nonlocal sequence, makespan
            makespan = max(makespan, end)
            heapq.heappush(events, (end, _EVENT_COMPLETION, sequence,
                                    state_index, node_index, cluster))
            sequence += 1
            if self.keep_trace:
                state = states[state_index]
                self.trace.append(ScheduledNode(
                    request_id=state.request.request_id,
                    node=state.program.nodes[node_index].name,
                    cluster=cluster, start_cycle=now, end_cycle=end))

        while events:
            now = events[0][0]
            while events and events[0][0] == now:
                _, kind, _, state_index, node_index, cluster = \
                    heapq.heappop(events)
                state = states[state_index]
                if kind == _EVENT_ARRIVAL:
                    if not state.program.nodes:
                        state.finish_cycle = now
                        continue
                    for index, count in enumerate(state.remaining_deps):
                        if count == 0:
                            mark_ready(state_index, index)
                else:  # completion: free the cluster, release dependents
                    if cluster >= 0:
                        heapq.heappush(idle, cluster)
                    state.unfinished -= 1
                    if state.unfinished == 0:
                        state.finish_cycle = now
                    release(state_index, node_index)

            # Elementwise nodes start immediately on the host cores.
            while ready_host:
                _, state_index, node_index = heapq.heappop(ready_host)
                node = states[state_index].program.nodes[node_index]
                complete_later(state_index, node_index, -1,
                               now + self._elementwise_duration(node))

            # Dispatch the oldest ready GEMM nodes onto the idle clusters,
            # timing the whole wave through the farm in one batched call.
            wave: List[Tuple[_RequestState, int]] = []
            placements: List[Tuple[int, int, int]] = []
            while idle and ready_gemm:
                _, state_index, node_index = heapq.heappop(ready_gemm)
                cluster = heapq.heappop(idle)
                wave.append((states[state_index], node_index))
                placements.append((state_index, node_index, cluster))
            if wave:
                durations = self._time_gemm_wave(wave)
                for (state, _), (state_index, node_index, cluster), duration \
                        in zip(wave, placements, durations):
                    jobs_timed += state.program.nodes[node_index].n_jobs
                    busy[cluster] += duration
                    complete_later(state_index, node_index, cluster,
                                   now + duration)

        return self._build_report(states, busy, makespan, scenario,
                                  jobs_timed,
                                  cache_stats.hits - hits0,
                                  cache_stats.misses - misses0)

    def _build_report(self, states, busy, makespan, scenario, jobs_timed,
                      hits, misses) -> ServeReport:
        latencies: List[float] = []
        per_tenant: Dict[str, List[float]] = {}
        tenant_cycles: Dict[str, int] = {}
        models: Dict[str, int] = {}
        completed = 0
        for state in states:
            if state.finish_cycle is None:
                continue
            completed += 1
            latency = state.finish_cycle - state.request.arrival_cycle
            latencies.append(latency)
            per_tenant.setdefault(state.request.tenant, []).append(latency)
            tenant_cycles[state.request.tenant] = (
                tenant_cycles.get(state.request.tenant, 0) + latency)
            models[state.request.model] = models.get(state.request.model,
                                                     0) + 1
        tenants = {
            name: TenantReport(
                tenant=name, completed=len(values),
                total_cycles=tenant_cycles[name],
                latency=LatencyStats.from_latencies(values),
            )
            for name, values in per_tenant.items()
        }
        return ServeReport(
            scenario=scenario, n_clusters=self.n_clusters,
            frequency_hz=self.frequency_hz, makespan_cycles=makespan,
            completed=completed,
            latency=LatencyStats.from_latencies(latencies),
            tenants=tenants, busy_cycles=busy, jobs_timed=jobs_timed,
            cache_hits=hits, cache_misses=misses, models=models,
        )
