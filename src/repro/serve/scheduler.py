"""Multi-tenant serving simulator: dependency-aware list scheduling.

The simulator models a pool of ``n_clusters`` identical accelerator clusters
serving a stream of requests, each request being one lowered workload graph
(:class:`~repro.graph.lower.LoweredProgram`).  Scheduling is event-driven
list scheduling at *node* granularity:

* a node becomes **ready** when the request has arrived and all its graph
  dependencies have completed;
* whenever clusters are idle, the oldest ready nodes are dispatched onto
  them (FIFO over (arrival, request, topological index) -- deterministic);
* a GEMM node occupies its cluster for the sum of its jobs' cycles (plus
  the configurable per-job offload cost); elementwise nodes run on the
  host cores -- they never occupy a cluster, cost
  ``elements * elementwise_cycles_per_element`` (0 by default --
  negligible next to the GEMMs) and appear in the trace with cluster
  ``-1``.

Node service times come from a per-program **service-time memo**: the first
request of a model sends all of the program's accelerator jobs through the
:class:`~repro.farm.SimulationFarm` in one batched ``run()`` call (one
timing-cache pass, misses simulated together) and records each node's
cluster cycles; every later request of the same model -- the overwhelming
majority under serving traffic -- never touches the farm at all.  That is
what lets the loop sustain millions of simulated requests at interactive
wall-clock (the continuous-loop variant in :mod:`repro.serve.loop` shares
the same memo discipline).

The simulator consumes its request stream **lazily**: handing it the lazy
iterator from :meth:`RequestGenerator.stream` keeps memory O(in-flight
requests) no matter how long the traffic window is.  Eager sequences are
still accepted (and sorted defensively); iterator streams must already be
arrival-ordered, which the generator guarantees.

With one cluster and one request this degenerates to serial execution, so
the makespan equals the serial farm timing of the same graph
(:meth:`SimulationFarm.time_program`) -- the subsystem's conservation law,
pinned by the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.farm import SimulationFarm, default_farm
from repro.graph.ir import WorkloadGraph
from repro.graph.lower import LoweredProgram
from repro.obs import active as _telemetry_active
from repro.redmule.config import RedMulEConfig
from repro.serve.report import ServeReport, StreamingLatencyStats, TenantReport
from repro.serve.requests import DEFAULT_FREQUENCY_HZ, Request

#: Event kinds, ordered so completions at a time t free their cluster before
#: the dispatcher runs and arrivals are seen in the same pass.
_EVENT_COMPLETION = 0
_EVENT_ARRIVAL = 1


@dataclass(frozen=True)
class ScheduledNode:
    """Trace record: one node's placement on the pool.

    ``cluster`` is ``-1`` for elementwise nodes, which run on the host
    cores rather than on an accelerator cluster.
    """

    request_id: int
    node: str
    cluster: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        """Busy cycles on the cluster."""
        return self.end_cycle - self.start_cycle


class _RequestState:
    """Progress of one in-flight request."""

    __slots__ = ("request", "program", "durations", "remaining_deps",
                 "dependents", "unfinished")

    def __init__(self, request: Request, program: LoweredProgram,
                 durations: Sequence[int]) -> None:
        self.request = request
        self.program = program
        self.durations = durations
        index_of = {node.name: i for i, node in enumerate(program.nodes)}
        self.remaining_deps = [len(node.deps) for node in program.nodes]
        self.dependents: List[List[int]] = [[] for _ in program.nodes]
        for node_index, node in enumerate(program.nodes):
            for dep in node.deps:
                self.dependents[index_of[dep]].append(node_index)
        self.unfinished = len(program.nodes)


def derive_precision_farm(base: SimulationFarm,
                          precision: str) -> SimulationFarm:
    """A farm identical to ``base`` but timing ``precision`` elements.

    The derived farm shares the base farm's timing cache (per-precision
    records key on the element format, so they never collide) -- the PR 5
    plumbing that makes online precision routing free of duplicate state.
    Delegates to :meth:`~repro.farm.SimulationFarm.with_format`, which
    memoises one derived farm per format on the base farm.
    """
    return base.with_format(precision)


class ServingSimulator:
    """Serve lowered workload graphs on a pool of simulated clusters.

    Parameters
    ----------
    n_clusters:
        Pool size.  Every cluster is an instance of ``config`` (the farm's
        configuration when a farm is passed).
    farm:
        Timing service shared by the pool (default: the process-wide
        :func:`repro.farm.default_farm`); repeated shapes across requests,
        models and simulations hit its cache.
    backend:
        Per-call farm backend override (``"engine"``/``"model"``/
        ``"analytic"`` -- the last routes every job through the closed-form
        model, which is what makes serving capacity planning cheap enough
        to embed in a design-space sweep); ``None`` keeps the farm's own
        routing policy.
    offload_cycles_per_job:
        Core-side cost charged per accelerator job (register programming),
        matching :meth:`SimulationFarm.time_program`'s parameter.
    elementwise_cycles_per_element:
        Host-core cost of elementwise nodes (which never occupy a
        cluster); the default 0 models them as hidden behind accelerator
        work.
    tile:
        Lower request graphs in tiled mode (GEMMs split through the TCDM
        tiling planner) instead of whole-GEMM jobs.
    keep_trace:
        Record a :class:`ScheduledNode` per dispatched node (tests and
        debugging; large runs should leave this off).
    stats_mode / reservoir_size:
        Latency accounting (see
        :class:`~repro.serve.report.StreamingLatencyStats`).  The default
        reservoir is exact for runs up to ``reservoir_size`` completions --
        i.e. every pre-existing small scenario -- and switches to unbiased
        sample percentiles beyond, keeping memory bounded at any scale.
    """

    def __init__(
        self,
        n_clusters: int = 1,
        farm: Optional[SimulationFarm] = None,
        config: Optional[RedMulEConfig] = None,
        backend: Optional[str] = None,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        offload_cycles_per_job: float = 0.0,
        elementwise_cycles_per_element: float = 0.0,
        tile: bool = False,
        keep_trace: bool = False,
        stats_mode: str = "reservoir",
        reservoir_size: int = 4096,
        telemetry=None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("the pool needs at least one cluster")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if offload_cycles_per_job < 0 or elementwise_cycles_per_element < 0:
            raise ValueError("per-job and per-element costs must be >= 0")
        self.n_clusters = n_clusters
        self.farm = farm if farm is not None else default_farm(config)
        self.backend = backend
        self.frequency_hz = frequency_hz
        self.offload_cycles_per_job = offload_cycles_per_job
        self.elementwise_cycles_per_element = elementwise_cycles_per_element
        self.tile = tile
        self.keep_trace = keep_trace
        self.stats_mode = stats_mode
        self.reservoir_size = reservoir_size
        self.trace: List[ScheduledNode] = []
        #: Per-precision farms, lazily derived from the base farm (same
        #: architecture, same shared timing cache, different element
        #: format).  Mixed-precision tenant mixes dispatch each job to the
        #: farm whose line geometry matches its graph's precision.
        self._farms: Dict[str, SimulationFarm] = {self.farm.config.format:
                                                  self.farm}
        #: Lowered programs memoised per graph (keyed by the graph object
        #: itself -- identity semantics, and the reference keeps the graph
        #: alive so a recycled object id can never alias a different
        #: model).  Shared ModelSpec graphs are lowered once per simulator,
        #: not once per request.
        self._programs: Dict[WorkloadGraph, LoweredProgram] = {}
        #: Service-time memo: per-node cluster cycles keyed by lowered
        #: program identity (``_programs`` pins the program alive, so the
        #: id can never be recycled under us).  Populated by one batched
        #: farm call the first time a program is served; every later
        #: request of the model skips the farm on the hot path.
        self._node_cycles: Dict[int, List[int]] = {}
        # Observability: node placements land on the "wave" track stamped
        # in simulated cycles (one lane per cluster, host nodes as instant
        # events since their concurrency is unbounded).  Captured once; the
        # NullTelemetry default costs one attribute check per dispatch.
        self._obs = telemetry if telemetry is not None else _telemetry_active()
        if self._obs.enabled:
            self._obs.declare_track("wave", "cycles")

    # -- lowering ------------------------------------------------------------
    def _program_for(self, graph: WorkloadGraph) -> LoweredProgram:
        program = self._programs.get(graph)
        if program is None:
            program = graph.lower(config=self.farm.config, tile=self.tile)
            self._programs[graph] = program
        return program

    def _farm_for(self, precision: str) -> SimulationFarm:
        """The timing farm serving jobs of one element precision."""
        farm = self._farms.get(precision)
        if farm is None:
            farm = derive_precision_farm(self.farm, precision)
            self._farms[precision] = farm
        return farm

    # -- node timing ---------------------------------------------------------
    def _durations_for(self, program: LoweredProgram) -> List[int]:
        """Per-node service cycles, primed through the farm exactly once.

        GEMM nodes cost the sum of their jobs' farm cycles plus the
        per-job offload charge; elementwise nodes cost their host-core
        duration.  All of the program's accelerator jobs go through the
        farm in one batched ``run()`` call at prime time.
        """
        durations = self._node_cycles.get(id(program))
        if durations is not None:
            return durations
        jobs = [job for node in program.nodes for job in node.jobs]
        results = (self._farm_for(program.precision).run(
            jobs, backend=self.backend) if jobs else [])
        durations = []
        offset = 0
        for node in program.nodes:
            if node.is_gemm:
                cycles = sum(result.cycles for result in
                             results[offset:offset + node.n_jobs])
                cycles += self.offload_cycles_per_job * node.n_jobs
                durations.append(int(round(cycles)))
                offset += node.n_jobs
            else:
                durations.append(self._elementwise_duration(node))
        self._node_cycles[id(program)] = durations
        return durations

    def _elementwise_duration(self, node) -> int:
        """Host-core cycles of one elementwise node."""
        return int(round(self.elementwise_cycles_per_element * node.elements))

    # -- simulation ----------------------------------------------------------
    def simulate(self, requests: Iterable[Request],
                 scenario: str = "serve") -> ServeReport:
        """Run the event-driven simulation over a request stream.

        ``requests`` may be an eager sequence (sorted defensively, exactly
        as before) or a lazy iterator already ordered by arrival cycle
        (what :meth:`RequestGenerator.stream` yields); iterator streams are
        consumed one request ahead of the simulation clock, so memory stays
        proportional to the number of requests in flight.
        """
        if isinstance(requests, Sequence):
            stream: Iterator[Request] = iter(sorted(
                requests, key=lambda r: (r.arrival_cycle, r.request_id)))
        else:
            stream = iter(requests)
        if self.keep_trace:
            self.trace = []

        # Event heap entries: (cycle, kind, sequence, payload).  Completions
        # sort before arrivals at the same cycle so a freed cluster is
        # reusable immediately; the unique sequence keeps payloads out of
        # comparisons.  Completion payloads are (state index, node index,
        # cluster); arrival payloads are the request itself.
        events: List[Tuple[int, int, int, object]] = []
        sequence = 0
        last_arrival = -1

        def pull_arrival() -> None:
            """Stage the next request of the stream on the event heap."""
            nonlocal sequence, last_arrival
            request = next(stream, None)
            if request is None:
                return
            if request.arrival_cycle < last_arrival:
                raise ValueError(
                    "request stream must be ordered by arrival cycle; "
                    f"got {request.arrival_cycle} after {last_arrival}")
            last_arrival = request.arrival_cycle
            heapq.heappush(events, (request.arrival_cycle, _EVENT_ARRIVAL,
                                    sequence, request))
            sequence += 1

        pull_arrival()

        # In-flight request states, keyed by a dense admission index and
        # dropped at completion: memory is O(in-flight), not O(stream).
        states: Dict[int, _RequestState] = {}
        next_state_index = 0

        # Ready queues: (arrival, request index, node index) -- FIFO with
        # deterministic tie-breaks.  GEMM nodes compete for clusters;
        # elementwise nodes run on the host cores and are never gated on
        # the pool.
        ready_gemm: List[Tuple[int, int, int]] = []
        ready_host: List[Tuple[int, int, int]] = []
        idle: List[int] = list(range(self.n_clusters))
        heapq.heapify(idle)
        busy = [0 for _ in range(self.n_clusters)]
        makespan = 0

        cache_stats = self.farm.cache.stats
        hits0, misses0 = cache_stats.hits, cache_stats.misses
        jobs_timed = 0
        now = 0

        # Streaming accumulators: exact for small runs, bounded-memory
        # estimates beyond the reservoir (see class docstring).
        overall = StreamingLatencyStats(self.stats_mode, self.reservoir_size)
        per_tenant: Dict[str, StreamingLatencyStats] = {}
        tenant_cycles: Dict[str, int] = {}
        models: Dict[str, int] = {}

        def finish(state: _RequestState, cycle: int) -> None:
            request = state.request
            latency = cycle - request.arrival_cycle
            overall.add(latency)
            tenant = per_tenant.get(request.tenant)
            if tenant is None:
                tenant = per_tenant[request.tenant] = StreamingLatencyStats(
                    self.stats_mode, self.reservoir_size)
            tenant.add(latency)
            tenant_cycles[request.tenant] = (
                tenant_cycles.get(request.tenant, 0) + latency)
            models[request.model] = models.get(request.model, 0) + 1

        def mark_ready(state_index: int, node_index: int) -> None:
            state = states[state_index]
            queue = (ready_gemm if state.program.nodes[node_index].is_gemm
                     else ready_host)
            heapq.heappush(queue, (state.request.arrival_cycle, state_index,
                                   node_index))

        def release(state_index: int, node_index: int) -> None:
            """Mark newly-ready nodes of a request."""
            state = states[state_index]
            for dependent in state.dependents[node_index]:
                state.remaining_deps[dependent] -= 1
                if state.remaining_deps[dependent] == 0:
                    mark_ready(state_index, dependent)

        def complete_later(state_index: int, node_index: int, cluster: int,
                           end: int) -> None:
            nonlocal sequence, makespan
            makespan = max(makespan, end)
            heapq.heappush(events, (end, _EVENT_COMPLETION, sequence,
                                    (state_index, node_index, cluster)))
            sequence += 1
            if self.keep_trace:
                state = states[state_index]
                self.trace.append(ScheduledNode(
                    request_id=state.request.request_id,
                    node=state.program.nodes[node_index].name,
                    cluster=cluster, start_cycle=now, end_cycle=end))
            if self._obs.enabled:
                state = states[state_index]
                name = state.program.nodes[node_index].name
                if cluster >= 0:
                    self._obs.complete_span(
                        name, now, end, track="wave",
                        lane=f"cluster{cluster}", cat="node",
                        request_id=state.request.request_id,
                        tenant=state.request.tenant)
                else:
                    self._obs.instant(
                        name, ts=now, track="wave", lane="host", cat="node",
                        duration=end - now,
                        request_id=state.request.request_id,
                        tenant=state.request.tenant)
                self._obs.count("wave.nodes")

        while events:
            now = events[0][0]
            # lint: ignore[FLT001] same-cycle batch pop compares the identical float popped off this heap
            while events and events[0][0] == now:
                _, kind, _, payload = heapq.heappop(events)
                if kind == _EVENT_ARRIVAL:
                    request: Request = payload
                    # Stage the successor immediately so a same-cycle
                    # arrival is drained in this very pass (identical
                    # simultaneity semantics to the eager scheduler).
                    pull_arrival()
                    program = self._program_for(request.graph)
                    durations = self._durations_for(program)
                    state = _RequestState(request, program, durations)
                    if not state.program.nodes:
                        finish(state, now)
                        continue
                    state_index = next_state_index
                    next_state_index += 1
                    states[state_index] = state
                    for index, count in enumerate(state.remaining_deps):
                        if count == 0:
                            mark_ready(state_index, index)
                else:  # completion: free the cluster, release dependents
                    state_index, node_index, cluster = payload
                    state = states[state_index]
                    if cluster >= 0:
                        heapq.heappush(idle, cluster)
                    state.unfinished -= 1
                    release(state_index, node_index)
                    if state.unfinished == 0:
                        finish(state, now)
                        del states[state_index]

            # Elementwise nodes start immediately on the host cores.
            while ready_host:
                _, state_index, node_index = heapq.heappop(ready_host)
                state = states[state_index]
                complete_later(state_index, node_index, -1,
                               now + state.durations[node_index])

            # Dispatch the oldest ready GEMM nodes onto the idle clusters;
            # service times come straight from the memo -- no farm call.
            while idle and ready_gemm:
                _, state_index, node_index = heapq.heappop(ready_gemm)
                cluster = heapq.heappop(idle)
                state = states[state_index]
                duration = state.durations[node_index]
                jobs_timed += state.program.nodes[node_index].n_jobs
                busy[cluster] += duration
                complete_later(state_index, node_index, cluster,
                               now + duration)

        tenants = {
            name: TenantReport(
                tenant=name, completed=stats.count,
                total_cycles=tenant_cycles[name], latency=stats.finalize(),
            )
            for name, stats in per_tenant.items()
        }
        return ServeReport(
            scenario=scenario, n_clusters=self.n_clusters,
            frequency_hz=self.frequency_hz, makespan_cycles=makespan,
            completed=overall.count, latency=overall.finalize(),
            tenants=tenants, busy_cycles=busy, jobs_timed=jobs_timed,
            cache_hits=cache_stats.hits - hits0,
            cache_misses=cache_stats.misses - misses0, models=models,
        )
