"""Continuous serving loop: admission, autoscaling, precision routing.

:class:`ContinuousServer` is the production-shaped counterpart of the
node-granular :class:`~repro.serve.scheduler.ServingSimulator`: one event
heap of arrival / completion / provision / autoscale-evaluation events, no
global waves, and a request stream that is consumed lazily -- the loop holds
O(in-flight + queued) state no matter how many million requests the traffic
window contains.

Requests are served as atomic units: a request occupies one cluster for its
graph's *serial* service time, which the loop memoises per (graph,
precision) -- the first request of a model/precision pair sends every
accelerator job through the farm in one batched call, every later request
resolves in a dictionary lookup and never touches the farm.  By
construction that service time equals
``SimulationFarm.time_program(program, offload)`` rounded to a cycle, so
the wave scheduler's conservation law (one cluster x one request makespan
== serial farm timing) holds on the continuous loop too, and is pinned by
the test suite.  Intra-request node parallelism remains the wave-free
:class:`ServingSimulator`'s department.

On top of the loop sit the production concerns it unlocks:

* **admission control** (:class:`AdmissionPolicy`): bounded queue,
  per-tenant fairness caps, and SLO-aware rejection (refuse a request whose
  projected wait + service would blow the p99 target -- better to shed at
  the door than to serve dead-on-arrival responses);
* **autoscaling** (:class:`AutoscalePolicy`): periodic evaluations scale
  the pool on queue depth and windowed p99, with a configurable
  provisioning delay before new capacity joins;
* **precision routing**: a request stamped with a tenant precision class
  (e.g. ``"fp8-e4m3"``) is timed through the per-precision farm of that
  element format (all derived farms share one timing cache -- PR 5's
  plumbing), so throughput tenants ride packed FP8 while accuracy-critical
  tenants stay FP16 on the same pool;
* **continuous batching** (``batch_cap > 1``): decode *sessions*
  (:class:`~repro.serve.requests.DecodeSessionSpec` requests) are
  multi-step units -- one skinny-GEMM step graph per generated token,
  attention growing with the KV position.  Sessions of the same
  (block-spec, precision) signature coalesce into one batched group per
  cluster: the weight-stationary projections and MLP run once at
  ``k = batch`` while each member's attention (whose shapes depend on its
  own cache length) is charged per member.  Members join and leave only at
  step boundaries; arrivals join a running group mid-stream (absorbed at
  the next boundary) when no cluster is idle.  Step costs memoise per
  (step-signature, batch-occupancy), so warm steady-state steps are
  dictionary lookups.  The decode conservation law -- a 1-session run on
  one cluster equals the serial sum of its per-step
  ``farm.time_program`` makespans -- holds by construction and is pinned
  per precision by the test suite.

The loop is instrumented through :mod:`repro.obs`: per-request lifecycle
spans stamped in *simulated* cycles on per-cluster-lane tracks (attrs:
tenant, model/precision, queue wait), shed/autoscale decision events,
and queue-depth / in-flight / pool-size gauges.  The telemetry is
captured at construction (``telemetry=`` parameter, defaulting to the
process-wide :func:`repro.obs.active`); with the default
:data:`~repro.obs.NULL_TELEMETRY` every hook is a single attribute
check, which the observability benchmark gates at <= 2 % overhead.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.farm import SimulationFarm, default_farm
from repro.graph.ir import WorkloadGraph
from repro.obs import active as _telemetry_active
from repro.graph.lower import LoweredProgram
from repro.redmule.config import RedMulEConfig
from repro.serve.report import (
    ContinuousReport,
    ServePoolStats,
    StreamingLatencyStats,
    TenantReport,
)
from repro.serve.requests import DEFAULT_FREQUENCY_HZ, Request
from repro.serve.scheduler import derive_precision_farm

#: Event kinds, ordered so capacity freed or provisioned at cycle t serves
#: an arrival at the same cycle: completions first, then decode step
#: boundaries (which may free a cluster too), then provisions, then
#: autoscale evaluations.  Arrivals are not heap events at all -- ``offer``
#: pumps the heap up to (and including) the arrival cycle first, which
#: yields exactly the same ordering without a push/pop round-trip per
#: request on the hot path.
_EVENT_COMPLETION = 0
_EVENT_STEP = 1
_EVENT_PROVISION = 2
_EVENT_EVAL = 3

#: ``drain()``'s pump limit: beyond any schedulable cycle.
_FOREVER = 1 << 62


@dataclass(frozen=True)
class AdmissionPolicy:
    """Admission rules applied to every arriving request.

    ``max_queue`` bounds the number of waiting (not yet dispatched)
    requests; ``None`` admits everything.  ``fair_share`` caps any single
    tenant's share of the queue at ``fair_share * (its weight share)`` of
    ``max_queue`` -- with equal weights and ``fair_share=2.0`` a tenant may
    use at most twice its fair fraction of the queue, so one bursting
    tenant cannot starve the rest.  ``slo_p99_cycles`` refuses requests
    whose projected completion (queued work spread over the pool plus the
    request's own service) would exceed the target -- shedding at the door
    instead of serving answers that already missed their deadline.
    """

    #: Queue-depth bound counting waiting atomic requests *and* waiting
    #: decode sessions; ``None`` admits everything.
    max_queue: Optional[int] = None
    #: Projected-completion bound: reject when queued work spread over the
    #: pool plus the request's own serial service exceeds this.
    slo_p99_cycles: Optional[float] = None
    #: Multiple of a tenant's fair queue fraction it may occupy.
    fair_share: float = 2.0
    #: Optional per-tenant weights for the fairness shares (equal when
    #: omitted).
    tenant_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None)")
        if self.slo_p99_cycles is not None and self.slo_p99_cycles <= 0:
            raise ValueError("slo_p99_cycles must be positive (or None)")
        if self.fair_share <= 0:
            raise ValueError("fair_share must be positive")
        if self.tenant_weights is not None:
            for tenant, weight in self.tenant_weights.items():
                if weight <= 0:
                    raise ValueError(
                        f"tenant {tenant!r}: weight must be positive")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-depth / p99-driven cluster-pool autoscaling.

    Every ``interval_cycles`` the loop compares effective capacity (live
    clusters plus in-flight provisions) against ``ceil(queue /
    queue_per_cluster)`` and against the windowed p99 (scale up by one when
    it breaches ``slo_p99_cycles``).  New capacity joins after
    ``provision_delay_cycles``.  Scale-down retires one idle cluster per
    evaluation, only when the queue is empty and pool occupancy is at or
    below ``scale_down_occupancy`` -- deliberately asymmetric (fast up,
    slow down), the shape every production autoscaler converges to.
    """

    #: Pool-size floor / ceiling the autoscaler must stay within.
    min_clusters: int = 1
    max_clusters: int = 16
    #: Cycles between autoscale evaluations.
    interval_cycles: int = 100_000
    #: Queued requests each cluster is expected to absorb (queue-depth
    #: scale-up trigger: grow toward ``ceil(queue / queue_per_cluster)``).
    queue_per_cluster: int = 4
    #: Occupancy at or below which an idle cluster may be retired.
    scale_down_occupancy: float = 0.25
    #: Delay between a scale-up decision and the capacity joining.
    provision_delay_cycles: int = 0
    #: Windowed-p99 target; breaching it scales up by one (``None`` = off).
    slo_p99_cycles: Optional[float] = None
    #: Completions folded into the sliding p99 window between evaluations.
    window: int = 1024

    def __post_init__(self) -> None:
        if self.min_clusters < 1:
            raise ValueError("min_clusters must be at least 1")
        if self.max_clusters < self.min_clusters:
            raise ValueError("max_clusters must be >= min_clusters")
        if self.interval_cycles < 1:
            raise ValueError("interval_cycles must be positive")
        if self.queue_per_cluster < 1:
            raise ValueError("queue_per_cluster must be positive")
        if not 0.0 <= self.scale_down_occupancy <= 1.0:
            raise ValueError("scale_down_occupancy must be in [0, 1]")
        if self.provision_delay_cycles < 0:
            raise ValueError("provision_delay_cycles must be >= 0")
        if self.slo_p99_cycles is not None and self.slo_p99_cycles <= 0:
            raise ValueError("slo_p99_cycles must be positive (or None)")
        if self.window < 8:
            raise ValueError("window must be at least 8")


class _DecodeSession:
    """Progress of one admitted decode session.

    ``index`` walks the session's KV-position list; ``queued_service`` is
    the serial-service estimate charged to the admission accounting while
    the session waits in the decode queue (zero otherwise).
    """

    __slots__ = ("request", "positions", "index", "queued_service")

    def __init__(self, request: Request, positions: Tuple[int, ...]) -> None:
        self.request = request
        self.positions = positions
        self.index = 0
        self.queued_service = 0

    @property
    def position(self) -> int:
        """KV position of the session's next (or current) step."""
        return self.positions[self.index]

    @property
    def done(self) -> bool:
        """True once every step has completed."""
        return self.index >= len(self.positions)


class _DecodeGroup:
    """A batch of decode sessions stepping together on one cluster.

    ``members`` step in lockstep (one batched step per event);
    ``joiners`` arrived mid-step and are absorbed at the next boundary.
    The group exists exactly while it occupies a cluster.
    """

    __slots__ = ("key", "members", "joiners", "step_started", "step_cost",
                 "lane")

    def __init__(self, key, members: List[_DecodeSession]) -> None:
        self.key = key
        self.members = members
        self.joiners: List[_DecodeSession] = []
        self.step_started = 0
        self.step_cost = 0
        self.lane = -1

    @property
    def occupancy(self) -> int:
        """Members plus pending joiners (the join-capacity measure)."""
        return len(self.members) + len(self.joiners)


class ContinuousServer:
    """Event-driven continuous serving over a resizable cluster pool.

    The incremental API -- :meth:`offer` one request at a time,
    :meth:`run_until` a deadline, :meth:`drain` and :meth:`finalize` --
    exists for differential testing and for embedding the loop in larger
    simulations; :meth:`simulate` wraps it for the common stream-in,
    report-out case.

    Parameters mirror :class:`ServingSimulator` where they overlap;
    ``admission`` and ``autoscaler`` are optional policies (both default
    to off: unbounded queue, fixed pool).  ``batch_cap`` bounds how many
    decode sessions may share one cluster's batched steps (1 = no
    cross-request batching: every session steps alone).
    """

    def __init__(
        self,
        n_clusters: int = 1,
        farm: Optional[SimulationFarm] = None,
        config: Optional[RedMulEConfig] = None,
        backend: Optional[str] = None,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        offload_cycles_per_job: float = 0.0,
        elementwise_cycles_per_element: float = 0.0,
        admission: Optional[AdmissionPolicy] = None,
        autoscaler: Optional[AutoscalePolicy] = None,
        stats_mode: str = "reservoir",
        reservoir_size: int = 4096,
        keep_latencies: bool = False,
        batch_cap: int = 1,
        telemetry=None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("the pool needs at least one cluster")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if offload_cycles_per_job < 0 or elementwise_cycles_per_element < 0:
            raise ValueError("per-job and per-element costs must be >= 0")
        if autoscaler is not None and n_clusters < autoscaler.min_clusters:
            raise ValueError("n_clusters must start within the autoscaler's "
                             "[min_clusters, max_clusters] band")
        if autoscaler is not None and n_clusters > autoscaler.max_clusters:
            raise ValueError("n_clusters must start within the autoscaler's "
                             "[min_clusters, max_clusters] band")
        if batch_cap < 1:
            raise ValueError("batch_cap must be at least 1")
        self.batch_cap = batch_cap
        self.farm = farm if farm is not None else default_farm(config)
        self.backend = backend
        self.frequency_hz = frequency_hz
        self.offload_cycles_per_job = offload_cycles_per_job
        self.elementwise_cycles_per_element = elementwise_cycles_per_element
        self.admission = admission
        self.autoscaler = autoscaler
        self.keep_latencies = keep_latencies
        self.latencies: List[int] = []

        # -- pool state ------------------------------------------------------
        self.n_clusters = n_clusters
        self._initial_clusters = n_clusters
        self._idle = n_clusters
        self._in_flight = 0
        self._queue: Deque[Tuple[Request, int]] = deque()
        self._queued_service = 0  # summed service cycles of queued requests
        self._queued_by_tenant: Dict[str, int] = {}
        self._pending_provisions = 0
        # -- decode-session state --------------------------------------------
        #: Sessions admitted but waiting for a cluster (FIFO; compatible
        #: runs are pulled together when a group starts).
        self._decode_queue: Deque[_DecodeSession] = deque()
        #: Join signature (block spec, requested precision) -> groups
        #: currently stepping (each occupies one cluster).
        self._decode_groups: Dict[Tuple[object, Optional[str]],
                                  List[_DecodeGroup]] = {}
        #: Sessions admitted and not yet completed (queued + grouped).
        self._decode_active = 0
        self.decode_sessions_completed = 0
        self.decode_steps = 0
        self.decode_batched_steps = 0
        self._decode_occupancy_sum = 0
        self.decode_max_occupancy = 0

        # -- clock / events --------------------------------------------------
        self._events: List[Tuple[int, int, int, object]] = []
        self._sequence = 0
        self._now = 0
        self._last_completion = 0
        self._last_offer = 0
        self._eval_scheduled = False

        # -- timing services -------------------------------------------------
        self._farms: Dict[str, SimulationFarm] = {self.farm.config.format:
                                                  self.farm}
        self._programs: Dict[Tuple[WorkloadGraph, str], LoweredProgram] = {}
        #: (graph, effective precision) -> serial service cycles.
        self._service: Dict[Tuple[WorkloadGraph, str], int] = {}
        #: Hot-path alias of ``_service`` keyed by the *requested* (graph,
        #: precision) pair, so the common case resolves in one dict lookup
        #: without re-deriving the effective precision.
        self._service_fast: Dict[Tuple[WorkloadGraph, Optional[str]],
                                 int] = {}
        # -- decode step-cost memos (keyed by step signature) ----------------
        #: (block spec, effective precision, KV position) -> rounded serial
        #: cycles of the *full* single-session step graph.  The B == 1 cost,
        #: exactly ``int(round(farm.time_program(step graph)))`` -- the
        #: decode conservation law rests on this memo.
        self._decode_full: Dict[Tuple[object, str, int], int] = {}
        #: (block spec, effective precision, batch) -> unrounded cycles of
        #: the shared (projections + MLP) half at width ``batch``.
        self._decode_shared: Dict[Tuple[object, str, int], float] = {}
        #: (block spec, effective precision, KV position) -> unrounded
        #: cycles of one member's attention half at that position.
        self._decode_attn: Dict[Tuple[object, str, int], float] = {}
        #: (session spec, effective precision) -> whole-session serial
        #: cycles (the admission estimate).
        self._decode_session: Dict[Tuple[object, str], int] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self._jobs_timed = 0
        self._cache_hits0 = self.farm.cache.stats.hits
        self._cache_misses0 = self.farm.cache.stats.misses

        # -- accounting ------------------------------------------------------
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_tenant: Dict[str, int] = {}
        self.rejection_reasons: Dict[str, int] = {}
        self._overall = StreamingLatencyStats(stats_mode, reservoir_size)
        self._per_tenant: Dict[str, StreamingLatencyStats] = {}
        self._tenant_cycles: Dict[str, int] = {}
        self._models: Dict[str, int] = {}
        self._stats_mode = stats_mode
        self._reservoir_size = reservoir_size
        self._busy_cycles = 0.0
        self._pool_cycles = 0.0
        self._pool_marker = 0  # last cycle the pool integral was advanced to
        self._min_clusters_seen = n_clusters
        self._max_clusters_seen = n_clusters
        self.scale_ups = 0
        self.scale_downs = 0
        #: Sliding completion-latency window feeding the autoscaler's p99.
        self._window: Optional[Deque[int]] = (
            deque(maxlen=autoscaler.window)
            if autoscaler is not None and autoscaler.slo_p99_cycles is not None
            else None)

        # -- observability ---------------------------------------------------
        # Captured once at construction; with the NullTelemetry default the
        # per-event cost below is exactly one ``enabled`` attribute check.
        obs = telemetry if telemetry is not None else _telemetry_active()
        self._obs = obs
        if obs.enabled:
            obs.declare_track("serve", "cycles")
            # Request spans are laid out on occupancy lanes ("cluster0",
            # "cluster1", ...): a lane is held from dispatch to completion
            # and recycled lowest-first, so concurrent requests never share
            # a lane and spans trivially nest per track.
            self._obs_lanes: List[int] = []
            self._obs_next_lane = 0
            self._obs_inflight: Dict[int, List[Tuple[int, int]]] = {}
            obs.sample("serve.pool_size", n_clusters, ts=0, track="serve")

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Cluster-occupying units in flight (a decode group counts once)."""
        return self._in_flight

    @property
    def decode_queue_depth(self) -> int:
        """Decode sessions admitted but not yet grouped onto a cluster."""
        return len(self._decode_queue)

    @property
    def decode_active(self) -> int:
        """Decode sessions admitted and not yet completed."""
        return self._decode_active

    def _advance_pool_integral(self, cycle: int) -> None:
        if cycle > self._pool_marker:
            self._pool_cycles += self.n_clusters * (cycle - self._pool_marker)
            self._pool_marker = cycle

    # -- service timing ------------------------------------------------------
    def _farm_for(self, precision: str) -> SimulationFarm:
        farm = self._farms.get(precision)
        if farm is None:
            farm = derive_precision_farm(self.farm, precision)
            self._farms[precision] = farm
        return farm

    def service_cycles(self, graph: WorkloadGraph,
                       precision: Optional[str] = None) -> int:
        """Serial service cycles of one request of ``graph``.

        ``precision`` is the request's routing class; a graph carrying its
        own precision always wins (matching :meth:`WorkloadGraph.lower`),
        then the routed class, then the pool's default format.  First call
        per (graph, precision) primes the memo through one batched farm
        run; later calls are dictionary lookups.
        """
        effective = (graph.precision or precision
                     or self.farm.config.format)
        key = (graph, effective)
        cycles = self._service.get(key)
        if cycles is not None:
            self.memo_hits += 1
            return cycles
        self.memo_misses += 1
        farm = self._farm_for(effective)
        program = self._programs.get(key)
        if program is None:
            program = graph.lower(config=farm.config)
            self._programs[key] = program
        jobs = [job for node in program.nodes for job in node.jobs]
        results = farm.run(jobs, backend=self.backend) if jobs else []
        self._jobs_timed += len(jobs)
        total = 0.0
        offset = 0
        for node in program.nodes:
            if node.is_gemm:
                total += sum(result.cycles for result in
                             results[offset:offset + node.n_jobs])
                total += self.offload_cycles_per_job * node.n_jobs
                offset += node.n_jobs
            else:
                total += (self.elementwise_cycles_per_element
                          * node.elements)
        cycles = int(round(total))
        self._service[key] = cycles
        return cycles

    # -- decode step costing -------------------------------------------------
    def _decode_effective(self, precision: Optional[str]) -> str:
        """Effective element format of a decode session's timing.

        Decode step graphs are precision-agnostic at graph level (the
        KV-cache overrides ride on individual nodes), so the requested
        class wins, then the pool's default format.
        """
        return precision or self.farm.config.format

    def _decode_program_cycles(self, graph: WorkloadGraph,
                               effective: str) -> float:
        """Unrounded serial cycles of one decode graph (farm-timed).

        Lowers against the effective-format farm and times through
        :meth:`SimulationFarm.time_program`, which routes each node's jobs
        through the farm of *its* precision -- the per-node KV-cache
        overrides are honoured here.  Offload and elementwise core costs
        are charged exactly like :meth:`service_cycles`.
        """
        farm = self._farm_for(effective)
        program = graph.lower(config=farm.config)
        timing = farm.time_program(program, backend=self.backend)
        self._jobs_timed += program.n_jobs
        total = timing.cycles
        total += self.offload_cycles_per_job * program.n_jobs
        if self.elementwise_cycles_per_element:
            total += self.elementwise_cycles_per_element * sum(
                node.elements for node in program.nodes if not node.is_gemm)
        return total

    def _decode_full_cycles(self, spec, effective: str, position: int) -> int:
        """Rounded cycles of a full single-session step at one KV position.

        This is the B == 1 step cost: ``int(round(farm.time_program(step
        graph)))`` by construction, which is what makes the decode
        conservation law exact.
        """
        key = (spec, effective, position)
        cycles = self._decode_full.get(key)
        if cycles is None:
            self.memo_misses += 1
            from repro.graph.llm import decode_step_graph

            cycles = int(round(self._decode_program_cycles(
                decode_step_graph(spec, position), effective)))
            self._decode_full[key] = cycles
        else:
            self.memo_hits += 1
        return cycles

    def _decode_shared_cycles(self, spec, effective: str,
                              batch: int) -> float:
        """Unrounded cycles of the batchable half at ``batch`` width."""
        key = (spec, effective, batch)
        cycles = self._decode_shared.get(key)
        if cycles is None:
            self.memo_misses += 1
            from repro.graph.llm import decode_shared_graph

            cycles = self._decode_program_cycles(
                decode_shared_graph(spec, batch), effective)
            self._decode_shared[key] = cycles
        else:
            self.memo_hits += 1
        return cycles

    def _decode_attn_cycles(self, spec, effective: str,
                            position: int) -> float:
        """Unrounded cycles of one member's attention half at a position."""
        key = (spec, effective, position)
        cycles = self._decode_attn.get(key)
        if cycles is None:
            self.memo_misses += 1
            from repro.graph.llm import decode_attention_graph

            cycles = self._decode_program_cycles(
                decode_attention_graph(spec, position), effective)
            self._decode_attn[key] = cycles
        else:
            self.memo_hits += 1
        return cycles

    def _group_step_cost(self, group: _DecodeGroup) -> int:
        """Cycles of the group's next batched step.

        A lone member runs its full step graph (the conservation-exact
        path).  A batch runs the shared half once at ``k = batch`` plus
        each member's own attention half -- the weight-stationary GEMMs
        coalesce, the KV-cache-shaped GEMMs cannot.
        """
        spec, precision = group.key
        effective = self._decode_effective(precision)
        members = group.members
        if len(members) == 1:
            return self._decode_full_cycles(spec, effective,
                                            members[0].position)
        total = self._decode_shared_cycles(spec, effective, len(members))
        for session in members:
            total += self._decode_attn_cycles(spec, effective,
                                              session.position)
        return int(round(total))

    def decode_session_cycles(self, session,
                              precision: Optional[str] = None) -> int:
        """Serial (unbatched) service cycles of one whole decode session.

        The sum of the session's per-step full-graph costs -- what a
        1-session run on one cluster takes, and the service estimate the
        admission policy charges for a decode arrival.
        """
        effective = self._decode_effective(precision)
        key = (session, effective)
        cycles = self._decode_session.get(key)
        if cycles is None:
            cycles = sum(
                self._decode_full_cycles(session.spec, effective, position)
                for position in session.positions)
            self._decode_session[key] = cycles
        else:
            self.memo_hits += 1
        return cycles

    # -- event plumbing ------------------------------------------------------
    def _push(self, cycle: int, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (cycle, kind, self._sequence, payload))
        self._sequence += 1

    def _arm_autoscaler(self) -> None:
        if (self.autoscaler is not None and not self._eval_scheduled):
            self._push(self._now + self.autoscaler.interval_cycles,
                       _EVENT_EVAL, None)
            self._eval_scheduled = True

    # -- admission -----------------------------------------------------------
    def _admit(self, request: Request, service: int) -> Optional[str]:
        """``None`` to admit, else the rejection reason."""
        policy = self.admission
        if policy is None:
            return None
        if policy.max_queue is not None:
            waiting = len(self._queue) + len(self._decode_queue)
            if waiting >= policy.max_queue:
                return "queue"
            weights = policy.tenant_weights
            if weights is not None:
                total = sum(weights.values())
                share = weights.get(request.tenant, 0.0) / total
            else:
                known = len(self._queued_by_tenant) or 1
                share = 1.0 / known
            cap = max(1, math.ceil(policy.fair_share * share
                                   * policy.max_queue))
            if self._queued_by_tenant.get(request.tenant, 0) >= cap:
                return "fairness"
        if policy.slo_p99_cycles is not None:
            capacity = self.n_clusters + self._pending_provisions
            projected = self._queued_service / capacity + service
            if projected > policy.slo_p99_cycles:
                return "slo"
        return None

    # -- dispatch / completion ----------------------------------------------
    def _dispatch(self, request: Request, service: int) -> None:
        self._idle -= 1
        self._in_flight += 1
        self._busy_cycles += service
        self._push(self._now + service, _EVENT_COMPLETION, request)
        if self._obs.enabled:
            self._obs_dispatched(request)
        self._arm_autoscaler()

    def _obs_claim_lane(self) -> int:
        """Claim the lowest free cluster lane (allocating if none free)."""
        lanes = self._obs_lanes
        if lanes:
            return heapq.heappop(lanes)
        lane = self._obs_next_lane
        self._obs_next_lane += 1
        return lane

    def _obs_dispatched(self, request: Request) -> None:
        """Record the dispatch: claim a lane, sample occupancy gauges."""
        lane = self._obs_claim_lane()
        # Keyed by object identity with a FIFO list per key, so even the
        # degenerate case of one Request object offered twice stays sound.
        self._obs_inflight.setdefault(id(request), []).append(
            (self._now, lane))
        self._obs.sample("serve.in_flight", self._in_flight, ts=self._now,
                         track="serve")

    def _obs_completed(self, request: Request, latency: int) -> None:
        """Close the request's lifecycle span on its cluster lane.

        The span covers dispatch -> completion in simulated cycles; the
        arrive -> dispatch queue wait rides along as an attribute (a
        separate queued span would overlap the lane's previous occupant).
        """
        obs = self._obs
        pending = self._obs_inflight[id(request)]
        dispatched, lane = pending.pop(0)
        if not pending:
            del self._obs_inflight[id(request)]
        heapq.heappush(self._obs_lanes, lane)
        obs.complete_span(
            request.model, dispatched, self._now, track="serve",
            lane=f"cluster{lane}", cat="request",
            tenant=request.tenant,
            precision=request.precision or "default",
            wait_cycles=dispatched - request.arrival_cycle,
            latency_cycles=latency)
        obs.count("serve.completed")
        obs.observe("serve.latency_cycles", latency)
        obs.sample("serve.queue_depth", len(self._queue), ts=self._now,
                   track="serve")
        obs.sample("serve.in_flight", self._in_flight, ts=self._now,
                   track="serve")

    def _record_completion(self, request: Request) -> int:
        """Fold one finished request (or decode session) into the latency
        accounting; returns the arrival-to-completion latency."""
        latency = self._now - request.arrival_cycle
        self._overall.add(latency)
        tenant = self._per_tenant.get(request.tenant)
        if tenant is None:
            tenant = self._per_tenant[request.tenant] = StreamingLatencyStats(
                self._stats_mode, self._reservoir_size)
        tenant.add(latency)
        self._tenant_cycles[request.tenant] = (
            self._tenant_cycles.get(request.tenant, 0) + latency)
        self._models[request.model] = self._models.get(request.model, 0) + 1
        if self._window is not None:
            self._window.append(latency)
        if self.keep_latencies:
            self.latencies.append(latency)
        return latency

    def _serve_queues(self) -> None:
        """Hand freed (or newly provisioned) capacity to waiting work.

        Atomic requests first (they were admitted against the same bounded
        queue), then decode-queue heads -- each of which seeds a fresh
        batched group, pulling compatible waiting sessions along.
        """
        while self._idle > 0 and self._queue:
            queued, queued_service = self._queue.popleft()
            self._queued_service -= queued_service
            self._queued_by_tenant[queued.tenant] -= 1
            self._dispatch(queued, queued_service)
        while self._idle > 0 and self._decode_queue:
            self._launch_decode_head()

    def _complete(self, request: Request) -> None:
        self._in_flight -= 1
        self._idle += 1
        self._last_completion = self._now
        latency = self._record_completion(request)
        if self._obs.enabled:
            self._obs_completed(request, latency)
        # Freed capacity immediately serves the head of the queues.
        self._serve_queues()

    def _fast_service(self, request: Request) -> int:
        """One-lookup service memo keyed by the requested precision."""
        key = (request.graph, request.precision)
        service = self._service_fast.get(key)
        if service is None:
            service = self.service_cycles(request.graph, request.precision)
            self._service_fast[key] = service
        else:
            self.memo_hits += 1
        return service

    # -- decode sessions -----------------------------------------------------
    def _admit_decode_session(self, request: Request, service: int) -> None:
        """Place a just-admitted decode session: own cluster, running
        group of the same signature, or the decode queue -- in that order.
        """
        session = _DecodeSession(request, tuple(request.decode.positions))
        self._decode_active += 1
        key = (request.decode.spec, request.precision)
        if self._idle > 0:
            self._start_decode_group(session, key)
            return
        for group in self._decode_groups.get(key, ()):
            if group.occupancy < self.batch_cap:
                # Absorbed at the group's next step boundary.
                group.joiners.append(session)
                return
        session.queued_service = service
        self._decode_queue.append(session)
        self._queued_service += service
        self._queued_by_tenant[request.tenant] = (
            self._queued_by_tenant.get(request.tenant, 0) + 1)
        if self._obs.enabled:
            self._obs.sample(
                "serve.queue_depth",
                len(self._queue) + len(self._decode_queue),
                ts=self._now, track="serve")
        self._arm_autoscaler()

    def _dequeue_decode(self, session: _DecodeSession) -> None:
        """Undo the queue accounting of a session leaving the decode queue."""
        self._queued_service -= session.queued_service
        session.queued_service = 0
        self._queued_by_tenant[session.request.tenant] -= 1

    def _launch_decode_head(self) -> None:
        """Seed a new group from the decode-queue head (cluster is idle)."""
        session = self._decode_queue.popleft()
        self._dequeue_decode(session)
        self._start_decode_group(
            session, (session.request.decode.spec, session.request.precision))

    def _start_decode_group(self, first: _DecodeSession, key) -> None:
        """Occupy an idle cluster with a new group led by ``first``,
        pulling compatible decode-queued sessions along up to the cap."""
        members = [first]
        if self._decode_queue and self.batch_cap > 1:
            remaining: Deque[_DecodeSession] = deque()
            for session in self._decode_queue:
                if (len(members) < self.batch_cap
                        and (session.request.decode.spec,
                             session.request.precision) == key):
                    self._dequeue_decode(session)
                    members.append(session)
                else:
                    remaining.append(session)
            self._decode_queue = remaining
        group = _DecodeGroup(key, members)
        self._idle -= 1
        self._in_flight += 1
        self._decode_groups.setdefault(key, []).append(group)
        if self._obs.enabled:
            group.lane = self._obs_claim_lane()
            self._obs.sample("serve.in_flight", self._in_flight,
                             ts=self._now, track="serve")
        self._begin_step(group)
        self._arm_autoscaler()

    def _begin_step(self, group: _DecodeGroup) -> None:
        """Schedule the group's next batched step from the current cycle."""
        cost = self._group_step_cost(group)
        group.step_started = self._now
        group.step_cost = cost
        occupancy = len(group.members)
        self._busy_cycles += cost
        self.decode_steps += 1
        if occupancy > 1:
            self.decode_batched_steps += 1
        self._decode_occupancy_sum += occupancy
        if occupancy > self.decode_max_occupancy:
            self.decode_max_occupancy = occupancy
        self._push(self._now + cost, _EVENT_STEP, group)

    def _on_step(self, group: _DecodeGroup) -> None:
        """A batched step finished: advance every member, retire the done
        ones, absorb joiners, and either step again or free the cluster."""
        obs = self._obs
        if obs.enabled:
            spec, _ = group.key
            obs.complete_span(
                f"{spec.name}.step", group.step_started, self._now,
                track="serve", lane=f"cluster{group.lane}", cat="decode-step",
                occupancy=len(group.members),
                positions=",".join(
                    str(session.position) for session in group.members))
        finished = []
        for session in group.members:
            session.index += 1
            if session.done:
                finished.append(session)
        if finished:
            group.members = [session for session in group.members
                             if not session.done]
            self._last_completion = self._now
            for session in finished:
                latency = self._record_completion(session.request)
                self.decode_sessions_completed += 1
                self._decode_active -= 1
                if obs.enabled:
                    obs.count("serve.decode_sessions")
                    obs.observe("serve.latency_cycles", latency)
        if group.joiners:
            free = self.batch_cap - len(group.members)
            if free > 0:
                group.members.extend(group.joiners[:free])
                del group.joiners[:free]
        if group.members:
            self._begin_step(group)
            return
        # Drained (joiners are promoted before this point, so an empty
        # member list implies no joiners either): free the cluster.
        siblings = self._decode_groups[group.key]
        siblings.remove(group)
        if not siblings:
            del self._decode_groups[group.key]
        self._in_flight -= 1
        self._idle += 1
        if obs.enabled:
            heapq.heappush(self._obs_lanes, group.lane)
            obs.sample("serve.in_flight", self._in_flight, ts=self._now,
                       track="serve")
        self._serve_queues()

    # -- autoscaling ---------------------------------------------------------
    def _resize(self, delta: int) -> int:
        """Apply a pool resize now; returns the delta actually applied.

        Growth is immediate (provisioning delay is modelled by scheduling
        the provision event, not here); shrink retires idle clusters only
        and never drops below one cluster (or the autoscaler's floor).
        """
        if delta > 0:
            self.n_clusters += delta
            self._idle += delta
            self.scale_ups += delta
            if self.n_clusters > self._max_clusters_seen:
                self._max_clusters_seen = self.n_clusters
            if self._obs.enabled:
                self._obs.sample("serve.pool_size", self.n_clusters,
                                 ts=self._now, track="serve")
            # New capacity drains the queues immediately.
            self._serve_queues()
            return delta
        floor = (self.autoscaler.min_clusters
                 if self.autoscaler is not None else 1)
        removable = min(-delta, self._idle, self.n_clusters - floor)
        if removable > 0:
            self.n_clusters -= removable
            self._idle -= removable
            self.scale_downs += removable
            if self.n_clusters < self._min_clusters_seen:
                self._min_clusters_seen = self.n_clusters
            if self._obs.enabled:
                self._obs.sample("serve.pool_size", self.n_clusters,
                                 ts=self._now, track="serve")
        return -removable

    def force_scale(self, delta: int) -> int:
        """Externally resize the pool at the current cycle (deterministic).

        Exists for tests and manual capacity experiments; the applied delta
        is returned (shrinks are limited to idle clusters and a floor of
        one cluster).
        """
        if delta == 0:
            return 0
        self._advance_pool_integral(self._now)
        return self._resize(delta)

    def _window_p99(self) -> Optional[float]:
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = min(len(ordered), max(1, math.ceil(0.99 * len(ordered))))
        return float(ordered[rank - 1])

    def _evaluate_scaling(self) -> None:
        policy = self.autoscaler
        self._eval_scheduled = False
        effective = self.n_clusters + self._pending_provisions
        waiting = len(self._queue) + len(self._decode_queue)
        desired = math.ceil(waiting / policy.queue_per_cluster)
        desired = max(policy.min_clusters,
                      min(policy.max_clusters, max(desired, 1)))
        p99 = None
        if policy.slo_p99_cycles is not None:
            p99 = self._window_p99()
            if p99 is not None and p99 > policy.slo_p99_cycles:
                desired = min(policy.max_clusters, max(desired,
                                                       effective + 1))
        decision, amount = "hold", 0
        if desired > effective:
            grow = desired - effective
            self._pending_provisions += grow
            self._push(self._now + policy.provision_delay_cycles,
                       _EVENT_PROVISION, grow)
            decision, amount = "scale_up", grow
        elif (desired < effective and not self._queue
              and not self._decode_queue
              and self._pending_provisions == 0):
            occupancy = (self._in_flight / self.n_clusters
                         if self.n_clusters else 1.0)
            if occupancy <= policy.scale_down_occupancy:
                applied = self._resize(-1)
                if applied:
                    decision, amount = "scale_down", applied
        obs = self._obs
        if obs.enabled:
            obs.count("serve.autoscale_evals")
            obs.instant(
                "serve.autoscale", ts=self._now, track="serve",
                lane="autoscaler", cat="autoscale", decision=decision,
                amount=amount, desired=desired, effective=effective,
                queue_depth=waiting, in_flight=self._in_flight,
                window_p99=-1.0 if p99 is None else p99,
                slo_p99=(-1.0 if policy.slo_p99_cycles is None
                         else policy.slo_p99_cycles))
        # Keep evaluating while there is work (or capacity in flight) --
        # and let the event heap drain to empty otherwise.
        if (self._queue or self._decode_queue or self._in_flight
                or self._pending_provisions):
            self._arm_autoscaler()

    # -- event loop ----------------------------------------------------------
    def _pump(self, limit: int) -> None:
        """Process every event at or before ``limit``.

        The completion case -- millions of firings on the hot path -- is
        inlined here rather than dispatched through a helper; the rare
        provision/eval events take the out-of-line branches.
        """
        events = self._events
        heappop = heapq.heappop
        while events and events[0][0] <= limit:
            cycle, kind, _, payload = heappop(events)
            if cycle > self._pool_marker:
                self._pool_cycles += (self.n_clusters
                                      * (cycle - self._pool_marker))
                self._pool_marker = cycle
            self._now = cycle
            if kind == _EVENT_COMPLETION:
                self._complete(payload)
            elif kind == _EVENT_STEP:
                self._on_step(payload)
            elif kind == _EVENT_PROVISION:
                self._pending_provisions -= payload
                self._resize(payload)
            else:
                self._evaluate_scaling()

    # -- public API ----------------------------------------------------------
    def offer(self, request: Request) -> bool:
        """Offer one request at its arrival cycle; True if admitted.

        Offers must be arrival-ordered (what the generator's merged stream
        guarantees); the loop advances to the arrival cycle as a side
        effect, so completions scheduled before it are processed first.
        """
        arrival = request.arrival_cycle
        if arrival < self._last_offer:
            raise ValueError(
                "requests must be offered in arrival order; "
                f"got {arrival} after {self._last_offer}")
        if arrival < self._now:
            raise ValueError(
                f"cannot offer a request at past cycle {arrival} "
                f"(clock is at {self._now})")
        self._last_offer = arrival
        self.offered += 1
        # Catch the clock up to the arrival before deciding admission, so
        # queue state reflects every completion up to this instant (events
        # *at* the arrival cycle included -- identical ordering to a
        # completions-before-arrivals event heap).
        events = self._events
        if events and events[0][0] <= arrival:
            self._pump(arrival)
        if arrival > self._pool_marker:
            self._pool_cycles += (self.n_clusters
                                  * (arrival - self._pool_marker))
            self._pool_marker = arrival
        self._now = arrival
        if request.decode is not None:
            service = self.decode_session_cycles(request.decode,
                                                 request.precision)
        else:
            service = self._fast_service(request)
        if self.admission is not None:
            reason = self._admit(request, service)
            if reason is not None:
                self.rejected += 1
                self.rejected_by_tenant[request.tenant] = (
                    self.rejected_by_tenant.get(request.tenant, 0) + 1)
                self.rejection_reasons[reason] = (
                    self.rejection_reasons.get(reason, 0) + 1)
                obs = self._obs
                if obs.enabled:
                    obs.count("serve.rejected." + reason)
                    obs.instant("serve.shed", ts=arrival, track="serve",
                                lane="admission", cat="admission",
                                tenant=request.tenant, model=request.model,
                                reason=reason)
                return False
        self.admitted += 1
        if self._obs.enabled:
            self._obs.count("serve.admitted")
        if request.decode is not None:
            self._admit_decode_session(request, service)
            return True
        if self._idle > 0 and not self._queue:
            self._dispatch(request, service)
        else:
            self._queue.append((request, service))
            self._queued_service += service
            self._queued_by_tenant[request.tenant] = (
                self._queued_by_tenant.get(request.tenant, 0) + 1)
            if self._obs.enabled:
                self._obs.sample("serve.queue_depth", len(self._queue),
                                 ts=arrival, track="serve")
            self._arm_autoscaler()
        return True

    def run_until(self, cycle: int) -> None:
        """Advance the loop (and the clock) to ``cycle``."""
        if cycle < self._now:
            raise ValueError(f"cannot run backwards to {cycle} "
                             f"(clock is at {self._now})")
        self._pump(cycle)
        self._advance_pool_integral(cycle)
        self._now = cycle

    def drain(self) -> None:
        """Run every remaining event (autoscaler evaluations stop arming
        themselves once no work is left, so this terminates)."""
        self._pump(_FOREVER)

    def finalize(self, scenario: str = "serve-continuous") -> ContinuousReport:
        """Snapshot the run as a :class:`ContinuousReport`."""
        self._advance_pool_integral(self._now)
        stats = self.farm.cache.stats
        tenants = {
            name: TenantReport(
                tenant=name, completed=acc.count,
                total_cycles=self._tenant_cycles[name],
                latency=acc.finalize(),
            )
            for name, acc in self._per_tenant.items()
        }
        pool = ServePoolStats(
            initial_clusters=self._initial_clusters,
            min_clusters=self._min_clusters_seen,
            max_clusters=self._max_clusters_seen,
            final_clusters=self.n_clusters,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            pool_cycles=self._pool_cycles,
        )
        return ContinuousReport(
            scenario=scenario, frequency_hz=self.frequency_hz,
            makespan_cycles=self._last_completion,
            offered=self.offered, admitted=self.admitted,
            rejected=self.rejected, completed=self._overall.count,
            latency=self._overall.finalize(), tenants=tenants,
            rejected_by_tenant=dict(self.rejected_by_tenant), pool=pool,
            busy_cycles=self._busy_cycles,
            memo_hits=self.memo_hits, memo_misses=self.memo_misses,
            jobs_timed=self._jobs_timed,
            cache_hits=stats.hits - self._cache_hits0,
            cache_misses=stats.misses - self._cache_misses0,
            models=dict(self._models),
            decode_sessions=self.decode_sessions_completed,
            decode_steps=self.decode_steps,
            decode_batched_steps=self.decode_batched_steps,
            decode_mean_occupancy=(
                self._decode_occupancy_sum / self.decode_steps
                if self.decode_steps else 0.0),
            decode_max_occupancy=self.decode_max_occupancy,
            batch_cap=self.batch_cap,
        )

    def simulate(self, requests: Iterable[Request],
                 scenario: str = "serve-continuous") -> ContinuousReport:
        """Stream requests through the loop, drain, and report.

        ``requests`` is consumed lazily -- pair it with
        :meth:`RequestGenerator.stream` to serve million-request windows in
        O(in-flight) memory.
        """
        offer = self.offer
        for request in requests:
            offer(request)
        self.drain()
        return self.finalize(scenario)
