"""Serving metrics: latency percentiles, throughput, utilisation, tenants.

All raw quantities are in cluster clock cycles (the serving simulator's time
base); rates are additionally reported in wall-clock terms through the
scenario's operating frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.perf.report import TextTable


def percentile(values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of a sample (0 < quantile <= 1)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    ordered = sorted(values)
    # Nearest-rank: ceil(q * n), clamped into the sample.
    rank = min(len(ordered), max(1, math.ceil(quantile * len(ordered))))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution of a set of completed requests (cycles)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencyStats":
        """Summarise a latency sample (empty samples become all-zero).

        The sample is sorted once and every nearest-rank percentile is read
        off the single ordered copy (the previous implementation re-sorted
        the full sample per percentile, an O(3 n log n) habit that showed up
        in large serving reports).
        """
        if not latencies:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        ordered = sorted(latencies)
        count = len(ordered)

        def nearest_rank(quantile: float) -> float:
            rank = min(count, max(1, math.ceil(quantile * count)))
            return float(ordered[rank - 1])

        return cls(
            count=count,
            mean=sum(ordered) / count,
            p50=nearest_rank(0.50),
            p95=nearest_rank(0.95),
            p99=nearest_rank(0.99),
            max=float(ordered[-1]),
        )


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant serving outcome."""

    tenant: str
    completed: int
    total_cycles: int
    latency: LatencyStats

    def throughput_rps(self, makespan_cycles: float,
                       frequency_hz: float) -> float:
        """Requests per wall-clock second over the run's makespan."""
        if makespan_cycles <= 0:
            return 0.0
        return self.completed / (makespan_cycles / frequency_hz)


@dataclass
class ServeReport:
    """Outcome of one serving simulation."""

    scenario: str
    n_clusters: int
    frequency_hz: float
    #: Last completion cycle (0 when nothing ran).
    makespan_cycles: int
    completed: int
    latency: LatencyStats
    tenants: Dict[str, TenantReport]
    #: Busy cycles per cluster, index-aligned with the pool.
    busy_cycles: List[int]
    #: Accelerator jobs dispatched / served from the timing cache.
    jobs_timed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-model completion counts.
    models: Dict[str, int] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------
    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second over the makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed / (self.makespan_cycles / self.frequency_hz)

    @property
    def throughput_per_mcycle(self) -> float:
        """Completed requests per million cycles (frequency-independent)."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed * 1e6 / self.makespan_cycles

    @property
    def utilisation(self) -> List[float]:
        """Per-cluster busy fraction of the makespan."""
        if self.makespan_cycles <= 0:
            return [0.0 for _ in self.busy_cycles]
        return [busy / self.makespan_cycles for busy in self.busy_cycles]

    @property
    def mean_utilisation(self) -> float:
        """Pool-wide mean busy fraction."""
        utilisation = self.utilisation
        if not utilisation:
            return 0.0
        return sum(utilisation) / len(utilisation)

    @property
    def cache_hit_rate(self) -> float:
        """Timing-cache hit rate over this simulation's lookups."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"serving scenario {self.scenario}: {self.completed} requests on "
            f"{self.n_clusters} cluster(s), makespan "
            f"{self.makespan_cycles} cycles "
            f"({self.makespan_cycles / self.frequency_hz * 1e3:.2f} ms at "
            f"{self.frequency_hz / 1e6:.0f} MHz)",
            f"  throughput : {self.throughput_rps:.1f} req/s "
            f"({self.throughput_per_mcycle:.3f} req/Mcycle)",
            f"  latency    : p50 {self.latency.p50:.0f}  "
            f"p95 {self.latency.p95:.0f}  p99 {self.latency.p99:.0f}  "
            f"max {self.latency.max:.0f} cycles",
            "  utilisation: "
            + "  ".join(f"c{index}={100 * value:.1f}%"
                        for index, value in enumerate(self.utilisation))
            + f"  (mean {100 * self.mean_utilisation:.1f}%)",
            f"  farm       : {self.jobs_timed} jobs timed, "
            f"{self.cache_hits} hits / {self.cache_misses} misses "
            f"({100 * self.cache_hit_rate:.1f}% hit rate)",
        ]
        if self.models:
            mix = ", ".join(f"{name}: {count}"
                            for name, count in sorted(self.models.items()))
            lines.append(f"  models     : {mix}")
        if self.tenants:
            table = TextTable(["tenant", "requests", "p50", "p95", "p99",
                               "mean", "req/s"])
            for name in sorted(self.tenants):
                tenant = self.tenants[name]
                table.add_row([
                    name, tenant.completed, tenant.latency.p50,
                    tenant.latency.p95, tenant.latency.p99,
                    tenant.latency.mean,
                    tenant.throughput_rps(self.makespan_cycles,
                                          self.frequency_hz),
                ])
            lines.append("  per tenant (latency in cycles):")
            lines.extend("    " + line for line in table.render().splitlines())
        return "\n".join(lines)
