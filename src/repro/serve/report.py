"""Serving metrics: latency percentiles, throughput, utilisation, tenants.

All raw quantities are in cluster clock cycles (the serving simulator's time
base); rates are additionally reported in wall-clock terms through the
scenario's operating frequency.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.report import TextTable


def percentile(values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of a sample (0 < quantile <= 1)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    ordered = sorted(values)
    # Nearest-rank: ceil(q * n), clamped into the sample.
    rank = min(len(ordered), max(1, math.ceil(quantile * len(ordered))))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution of a set of completed requests (cycles)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencyStats":
        """Summarise a latency sample (empty samples become all-zero).

        The sample is sorted once and every nearest-rank percentile is read
        off the single ordered copy (the previous implementation re-sorted
        the full sample per percentile, an O(3 n log n) habit that showed up
        in large serving reports).
        """
        if not latencies:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        ordered = sorted(latencies)
        count = len(ordered)

        def nearest_rank(quantile: float) -> float:
            rank = min(count, max(1, math.ceil(quantile * count)))
            return float(ordered[rank - 1])

        return cls(
            count=count,
            mean=sum(ordered) / count,
            p50=nearest_rank(0.50),
            p95=nearest_rank(0.95),
            p99=nearest_rank(0.99),
            max=float(ordered[-1]),
        )


# -- streaming estimators ----------------------------------------------------
class P2Quantile:
    """P² (piecewise-parabolic) streaming quantile estimator.

    Jain & Chlamtac's classic five-marker algorithm: O(1) memory, O(1)
    update, and for the first five observations it is *exact* (the markers
    are the sorted sample).  Beyond that the middle marker tracks the target
    quantile by parabolic interpolation of the marker heights.

    The estimate converges to the true quantile for stationary inputs; the
    streaming-stats test suite pins a rank-window error bound on adversarial
    (bimodal, heavy-tailed) distributions.
    """

    __slots__ = ("quantile", "count", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = quantile
        self.count = 0
        self._heights: List[float] = []
        self._positions = [0, 1, 2, 3, 4]
        self._desired = [0.0, 2 * quantile, 4 * quantile,
                         2 + 2 * quantile, 4.0]
        self._increments = [0.0, quantile / 2, quantile,
                            (1 + quantile) / 2, 1.0]

    def add(self, value: float) -> None:
        """Fold one observation into the estimate."""
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            bisect.insort(heights, value)
            return
        # Locate the marker cell the observation falls into, extending the
        # extreme markers when it lands outside them.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        positions = self._positions
        for index in range(cell + 1, 5):
            positions[index] += 1
        desired = self._desired
        increments = self._increments
        for index in range(5):
            desired[index] += increments[index]
        # Nudge the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            drift = desired[index] - positions[index]
            if ((drift >= 1 and positions[index + 1] - positions[index] > 1)
                    or (drift <= -1
                        and positions[index - 1] - positions[index] < -1)):
                step = 1 if drift > 0 else -1
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: int) -> float:
        heights, positions = self._heights, self._positions
        span = positions[index + 1] - positions[index - 1]
        upper = ((positions[index] - positions[index - 1] + step)
                 * (heights[index + 1] - heights[index])
                 / (positions[index + 1] - positions[index]))
        lower = ((positions[index + 1] - positions[index] - step)
                 * (heights[index] - heights[index - 1])
                 / (positions[index] - positions[index - 1]))
        return heights[index] + step * (upper + lower) / span

    def _linear(self, index: int, step: int) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + step * (
            (heights[index + step] - heights[index])
            / (positions[index + step] - positions[index]))

    @property
    def value(self) -> float:
        """Current estimate (exact nearest-rank while count <= 5)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            rank = min(self.count, max(1, math.ceil(self.quantile
                                                    * self.count)))
            return float(self._heights[rank - 1])
        return float(self._heights[2])


#: Knuth's 64-bit LCG constants (MMIX): fast, deterministic, and plenty
#: uniform for reservoir admission decisions.
_LCG_MULTIPLIER = 6364136223846793005
_LCG_INCREMENT = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class ReservoirSampler:
    """Uniform fixed-size reservoir (Vitter's Algorithm R), deterministic.

    Keeps an unbiased ``size``-element sample of an unbounded stream in O(1)
    per observation.  Randomness comes from an inline 64-bit LCG rather than
    ``numpy``/``random`` so (a) admission costs ~2 integer ops on the
    serving hot path and (b) the sample -- and therefore every reported
    percentile -- is bit-reproducible across runs and platforms.

    While the stream is no longer than the reservoir the sample *is* the
    stream, so quantiles are exact -- the small-scenario fidelity the test
    suite relies on.
    """

    __slots__ = ("size", "count", "values", "_state")

    def __init__(self, size: int = 4096, seed: int = 0x9E3779B97F4A7C15):
        if size < 1:
            raise ValueError("reservoir size must be at least 1")
        self.size = size
        self.count = 0
        self.values: List[float] = []
        self._state = seed & _LCG_MASK

    def add(self, value: float) -> None:
        """Offer one observation to the reservoir."""
        count = self.count = self.count + 1
        if count <= self.size:
            self.values.append(value)
            return
        state = (self._state * _LCG_MULTIPLIER + _LCG_INCREMENT) & _LCG_MASK
        self._state = state
        # Admit with probability size/count: slot j uniform in [0, count).
        slot = (state >> 11) % count
        if slot < self.size:
            self.values[slot] = value

    def quantiles(self, quantiles: Sequence[float]) -> List[float]:
        """Nearest-rank quantiles over the current sample (sorted once)."""
        if not self.values:
            return [0.0 for _ in quantiles]
        ordered = sorted(self.values)
        n = len(ordered)
        out = []
        for quantile in quantiles:
            if not 0.0 < quantile <= 1.0:
                raise ValueError(f"quantile must be in (0, 1], {quantile}")
            rank = min(n, max(1, math.ceil(quantile * n)))
            out.append(float(ordered[rank - 1]))
        return out


class StreamingLatencyStats:
    """Latency accumulator with bounded memory and exact count/mean/max.

    Three percentile modes:

    * ``"reservoir"`` (default) -- deterministic uniform reservoir; exact
      until the stream exceeds the reservoir, then sample quantiles.  The
      cheapest per observation, which is why the serving hot path uses it.
    * ``"p2"`` -- three P² marker estimators (p50/p95/p99); O(1) memory
      independent of any buffer, slightly costlier per observation.
    * ``"exact"`` -- keep everything and sort once at the end (small runs,
      oracles in tests).

    ``finalize()`` snapshots the distribution as a plain
    :class:`LatencyStats`.
    """

    __slots__ = ("mode", "count", "total", "max", "_reservoir", "_markers",
                 "_values")

    _P2_QUANTILES = (0.50, 0.95, 0.99)

    def __init__(self, mode: str = "reservoir",
                 reservoir_size: int = 4096) -> None:
        if mode not in ("reservoir", "p2", "exact"):
            raise ValueError(f"unknown streaming-stats mode {mode!r}")
        self.mode = mode
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._reservoir: Optional[ReservoirSampler] = None
        self._markers: Optional[Tuple[P2Quantile, ...]] = None
        self._values: Optional[List[float]] = None
        if mode == "reservoir":
            self._reservoir = ReservoirSampler(reservoir_size)
        elif mode == "p2":
            self._markers = tuple(P2Quantile(quantile)
                                  for quantile in self._P2_QUANTILES)
        else:
            self._values = []

    def add(self, value: float) -> None:
        """Fold one latency observation in."""
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if self._reservoir is not None:
            self._reservoir.add(value)
        elif self._markers is not None:
            for marker in self._markers:
                marker.add(value)
        else:
            self._values.append(value)

    def finalize(self) -> LatencyStats:
        """Snapshot the stream as a :class:`LatencyStats`."""
        if self.count == 0:
            return LatencyStats(count=0, mean=0.0, p50=0.0, p95=0.0,
                                p99=0.0, max=0.0)
        if self._values is not None:
            stats = LatencyStats.from_latencies(self._values)
            return LatencyStats(count=stats.count, mean=stats.mean,
                                p50=stats.p50, p95=stats.p95, p99=stats.p99,
                                max=float(self.max))
        if self._reservoir is not None:
            p50, p95, p99 = self._reservoir.quantiles(self._P2_QUANTILES)
        else:
            p50, p95, p99 = (marker.value for marker in self._markers)
        return LatencyStats(count=self.count, mean=self.total / self.count,
                            p50=p50, p95=p95, p99=p99, max=float(self.max))


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant serving outcome."""

    tenant: str
    completed: int
    total_cycles: int
    latency: LatencyStats

    def throughput_rps(self, makespan_cycles: float,
                       frequency_hz: float) -> float:
        """Requests per wall-clock second over the run's makespan."""
        if makespan_cycles <= 0:
            return 0.0
        return self.completed / (makespan_cycles / frequency_hz)


@dataclass
class ServeReport:
    """Outcome of one serving simulation."""

    scenario: str
    n_clusters: int
    frequency_hz: float
    #: Last completion cycle (0 when nothing ran).
    makespan_cycles: int
    completed: int
    latency: LatencyStats
    tenants: Dict[str, TenantReport]
    #: Busy cycles per cluster, index-aligned with the pool.
    busy_cycles: List[int]
    #: Accelerator jobs dispatched / served from the timing cache.
    jobs_timed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-model completion counts.
    models: Dict[str, int] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------
    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second over the makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed / (self.makespan_cycles / self.frequency_hz)

    @property
    def throughput_per_mcycle(self) -> float:
        """Completed requests per million cycles (frequency-independent)."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed * 1e6 / self.makespan_cycles

    @property
    def utilisation(self) -> List[float]:
        """Per-cluster busy fraction of the makespan."""
        if self.makespan_cycles <= 0:
            return [0.0 for _ in self.busy_cycles]
        return [busy / self.makespan_cycles for busy in self.busy_cycles]

    @property
    def mean_utilisation(self) -> float:
        """Pool-wide mean busy fraction."""
        utilisation = self.utilisation
        if not utilisation:
            return 0.0
        return sum(utilisation) / len(utilisation)

    @property
    def cache_hit_rate(self) -> float:
        """Timing-cache hit rate over this simulation's lookups."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"serving scenario {self.scenario}: {self.completed} requests on "
            f"{self.n_clusters} cluster(s), makespan "
            f"{self.makespan_cycles} cycles "
            f"({self.makespan_cycles / self.frequency_hz * 1e3:.2f} ms at "
            f"{self.frequency_hz / 1e6:.0f} MHz)",
            f"  throughput : {self.throughput_rps:.1f} req/s "
            f"({self.throughput_per_mcycle:.3f} req/Mcycle)",
            f"  latency    : p50 {self.latency.p50:.0f}  "
            f"p95 {self.latency.p95:.0f}  p99 {self.latency.p99:.0f}  "
            f"max {self.latency.max:.0f} cycles",
            "  utilisation: "
            + "  ".join(f"c{index}={100 * value:.1f}%"
                        for index, value in enumerate(self.utilisation))
            + f"  (mean {100 * self.mean_utilisation:.1f}%)",
            f"  farm       : {self.jobs_timed} jobs timed, "
            f"{self.cache_hits} hits / {self.cache_misses} misses "
            f"({100 * self.cache_hit_rate:.1f}% hit rate)",
        ]
        if self.models:
            mix = ", ".join(f"{name}: {count}"
                            for name, count in sorted(self.models.items()))
            lines.append(f"  models     : {mix}")
        if self.tenants:
            table = TextTable(["tenant", "requests", "p50", "p95", "p99",
                               "mean", "req/s"])
            for name in sorted(self.tenants):
                tenant = self.tenants[name]
                table.add_row([
                    name, tenant.completed, tenant.latency.p50,
                    tenant.latency.p95, tenant.latency.p99,
                    tenant.latency.mean,
                    tenant.throughput_rps(self.makespan_cycles,
                                          self.frequency_hz),
                ])
            lines.append("  per tenant (latency in cycles):")
            lines.extend("    " + line for line in table.render().splitlines())
        return "\n".join(lines)


@dataclass
class ServePoolStats:
    """Cluster-pool shape over one continuous serving run."""

    #: Pool size at the start / smallest / largest / final.
    initial_clusters: int
    min_clusters: int
    max_clusters: int
    final_clusters: int
    #: Scale events applied by the autoscaler (or forced externally).
    scale_ups: int = 0
    scale_downs: int = 0
    #: Time integral of the pool size (cluster-cycles of provisioned
    #: capacity) -- the utilisation denominator under autoscaling.
    pool_cycles: float = 0.0


@dataclass
class ContinuousReport:
    """Outcome of one continuous (streaming) serving run.

    The continuous loop's counterpart of :class:`ServeReport`: requests are
    admitted or rejected at arrival, the pool may resize mid-run, and the
    latency distribution is tracked by a streaming estimator rather than a
    kept-everything sort.
    """

    scenario: str
    frequency_hz: float
    #: Last completion cycle (0 when nothing completed).
    makespan_cycles: int
    offered: int
    admitted: int
    rejected: int
    completed: int
    latency: LatencyStats
    tenants: Dict[str, TenantReport]
    rejected_by_tenant: Dict[str, int]
    pool: ServePoolStats
    #: Busy cluster-cycles summed over the whole (resizable) pool.
    busy_cycles: float
    #: Service-time memo traffic: hits skip the farm entirely.
    memo_hits: int = 0
    memo_misses: int = 0
    jobs_timed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    models: Dict[str, int] = field(default_factory=dict)
    #: Continuous-batching outcome (zeros when the run had no decode
    #: sessions): completed sessions, total batched-step events, steps that
    #: ran at occupancy > 1, and the occupancy profile of all steps.
    decode_sessions: int = 0
    decode_steps: int = 0
    decode_batched_steps: int = 0
    decode_mean_occupancy: float = 0.0
    decode_max_occupancy: int = 0
    #: The server's decode batching cap (1 = no cross-request batching).
    batch_cap: int = 1

    # -- derived -------------------------------------------------------------
    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second over the makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.completed / (self.makespan_cycles / self.frequency_hz)

    @property
    def decode_batched_fraction(self) -> float:
        """Fraction of decode steps that ran at occupancy > 1."""
        if self.decode_steps == 0:
            return 0.0
        return self.decode_batched_steps / self.decode_steps

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests refused at admission."""
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered

    @property
    def utilisation(self) -> float:
        """Busy fraction of provisioned cluster-cycles."""
        if self.pool.pool_cycles <= 0:
            return 0.0
        return self.busy_cycles / self.pool.pool_cycles

    @property
    def mean_clusters(self) -> float:
        """Time-averaged pool size."""
        if self.makespan_cycles <= 0:
            return float(self.pool.final_clusters)
        return self.pool.pool_cycles / self.makespan_cycles

    @property
    def memo_hit_rate(self) -> float:
        """Service-memo hit rate (hits never touch the farm)."""
        lookups = self.memo_hits + self.memo_misses
        if lookups == 0:
            return 0.0
        return self.memo_hits / lookups

    @property
    def cache_hit_rate(self) -> float:
        """Timing-cache hit rate over this run's farm lookups."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable report."""
        pool = self.pool
        lines = [
            f"continuous serving {self.scenario}: {self.offered} offered, "
            f"{self.completed} completed, {self.rejected} rejected "
            f"({100 * self.rejection_rate:.1f}%), makespan "
            f"{self.makespan_cycles} cycles "
            f"({self.makespan_cycles / self.frequency_hz * 1e3:.2f} ms at "
            f"{self.frequency_hz / 1e6:.0f} MHz)",
            f"  throughput : {self.throughput_rps:.1f} req/s",
            f"  latency    : p50 {self.latency.p50:.0f}  "
            f"p95 {self.latency.p95:.0f}  p99 {self.latency.p99:.0f}  "
            f"max {self.latency.max:.0f} cycles",
            f"  pool       : {pool.initial_clusters} -> "
            f"{pool.final_clusters} clusters "
            f"(min {pool.min_clusters}, max {pool.max_clusters}, "
            f"mean {self.mean_clusters:.2f}; "
            f"{pool.scale_ups} up / {pool.scale_downs} down), "
            f"utilisation {100 * self.utilisation:.1f}%",
            f"  service    : {self.memo_hits} memo hits / "
            f"{self.memo_misses} misses "
            f"({100 * self.memo_hit_rate:.1f}%), {self.jobs_timed} jobs "
            f"timed, farm cache {self.cache_hits} hits / "
            f"{self.cache_misses} misses",
        ]
        if self.decode_steps:
            lines.append(
                f"  decode     : {self.decode_sessions} sessions, "
                f"{self.decode_steps} steps "
                f"({self.decode_batched_steps} batched, "
                f"{100 * self.decode_batched_fraction:.1f}%), occupancy "
                f"mean {self.decode_mean_occupancy:.2f} / "
                f"max {self.decode_max_occupancy} (cap {self.batch_cap})")
        if self.models:
            mix = ", ".join(f"{name}: {count}"
                            for name, count in sorted(self.models.items()))
            lines.append(f"  models     : {mix}")
        if self.tenants:
            table = TextTable(["tenant", "completed", "rejected", "p50",
                               "p99", "mean", "req/s"])
            for name in sorted(self.tenants):
                tenant = self.tenants[name]
                table.add_row([
                    name, tenant.completed,
                    self.rejected_by_tenant.get(name, 0),
                    tenant.latency.p50, tenant.latency.p99,
                    tenant.latency.mean,
                    tenant.throughput_rps(self.makespan_cycles,
                                          self.frequency_hz),
                ])
            lines.append("  per tenant (latency in cycles):")
            lines.extend("    " + line for line in table.render().splitlines())
        return "\n".join(lines)
