"""Serving workload description: tenants, mixes, streaming request generation.

A serving scenario is a set of *tenants*, each owning a mix of zoo models
and a mean request rate.  The generator draws arrivals per tenant from a
configurable arrival process and picks a model per request according to the
tenant's mix weights, then merges all tenants into one arrival-ordered
request stream.  Everything is deterministic under a seed, so serving
experiments are exactly repeatable.

Three arrival processes are supported (see :class:`ArrivalSpec`):

* ``poisson`` -- homogeneous Poisson arrivals (exponential inter-arrival
  gaps, the standard open-loop serving model);
* ``diurnal`` -- a non-homogeneous Poisson process whose rate follows a
  sinusoid over the traffic window (the day/night load swing every
  production service sees), sampled by thinning;
* ``bursty`` -- a two-state Markov-modulated Poisson process (MMPP-2):
  quiet periods at a fraction of the mean rate punctuated by bursts at a
  multiple of it, with exponentially-distributed sojourns.  The state rates
  are normalised so the *mean* rate still equals the tenant's ``rps``.

The generation API is **streaming**: :meth:`RequestGenerator.stream` is a
lazy per-tenant merged iterator holding O(active tenants) state, so a
million-request window never materialises a million-element list.  The
eager :meth:`RequestGenerator.generate` is a thin ``list(stream(...))``
wrapper kept for small scenarios and backwards compatibility; a regression
test pins that the two produce identical streams under the same seed.

Time is measured in *cluster clock cycles* throughout the serving simulator;
wall-clock rates (requests/s) are converted through the operating-point
frequency (default: the 22 nm performance point of the paper's cluster).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Iterator, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from repro.graph.ir import WorkloadGraph

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.graph.llm import DecodeSpec
from repro.power.technology import OP_22NM_PERFORMANCE

#: Clock frequency used to convert requests/s into cycles (22 nm, 0.8 V).
DEFAULT_FREQUENCY_HZ = OP_22NM_PERFORMANCE.frequency_hz

#: Arrival-process kinds understood by :class:`ArrivalSpec`.
ARRIVAL_KINDS = ("poisson", "diurnal", "bursty")

#: Random draws are pulled from numpy in chunks of this many values: the
#: streaming generator stays lazy (O(chunk) buffered per tenant) while the
#: per-request cost of the hot million-request path stays amortised-vector.
_CHUNK = 512

#: SeedSequence stream tag of the per-tenant streaming arrival draws
#: (burst() keeps the historical ``spawn(2)[1]`` child, so closed-loop
#: benchmark bursts are bit-identical across this refactor).
_TAG_TENANT_STREAM = 2


@dataclass(frozen=True)
class ArrivalSpec:
    """Parameters of one arrival process (see the module docstring).

    ``diurnal_period_s`` defaults to the traffic window itself (one full
    day/night swing over the simulated duration).  The bursty process
    alternates quiet/burst sojourns with mean cycle ``burst_cycle_s``,
    spending ``burst_fraction`` of the time bursting at ``burst_factor``
    times the mean rate; the quiet rate is derived so the long-run mean
    rate equals the tenant's ``rps`` (which requires
    ``burst_fraction * burst_factor < 1``).
    """

    kind: str = "poisson"
    diurnal_amplitude: float = 0.8
    diurnal_period_s: Optional[float] = None
    burst_factor: float = 8.0
    burst_fraction: float = 0.1
    burst_cycle_s: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; one of {ARRIVAL_KINDS}")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.diurnal_period_s is not None and self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if self.burst_factor <= 1.0:
            raise ValueError("burst_factor must exceed 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_fraction * self.burst_factor >= 1.0:
            raise ValueError(
                "burst_fraction * burst_factor must stay below 1 so the "
                "quiet-state rate normalising the mean remains positive")
        if self.burst_cycle_s <= 0:
            raise ValueError("burst_cycle_s must be positive")

    @classmethod
    def of(cls, value: Union[str, ArrivalSpec]) -> ArrivalSpec:
        """Coerce a kind name or a spec to a spec."""
        if isinstance(value, ArrivalSpec):
            return value
        return cls(kind=value)


@dataclass(frozen=True)
class ModelSpec:
    """One model in a tenant's mix: a workload graph plus a mix weight."""

    name: str
    graph: WorkloadGraph
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a model spec needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"model {self.name!r}: mix weight must be positive")


@dataclass(frozen=True)
class TenantSpec:
    """A tenant: a named model mix arriving at a mean request rate.

    ``precision`` is the tenant's serving class for online precision
    routing: when set (a registered element format such as ``"fp8-e4m3"``),
    every request of the tenant is stamped with it and the continuous
    serving loop routes the request's jobs through a farm of that element
    width (throughput tenants ride the packed FP8 line geometry,
    accuracy-critical tenants stay FP16).  ``None`` keeps the model's own
    precision (or the pool's default format).
    """

    name: str
    models: Tuple[ModelSpec, ...]
    rps: float
    precision: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if not self.models:
            raise ValueError(f"tenant {self.name!r} needs at least one model")
        if self.rps <= 0:
            raise ValueError(f"tenant {self.name!r}: rps must be positive")
        if self.precision is not None:
            from repro.fp.formats import get_format

            get_format(self.precision)  # raises on unknown formats
        object.__setattr__(self, "models", tuple(self.models))

    @property
    def mix_weights(self) -> List[float]:
        """Normalised model-mix probabilities."""
        total = sum(model.weight for model in self.models)
        return [model.weight / total for model in self.models]


@dataclass(frozen=True)
class DecodeSessionSpec:
    """An autoregressive decode session class: block shape + step count.

    ``spec`` is the transformer-block shape (a
    :class:`repro.graph.llm.DecodeSpec`); a session arrives with ``prefill``
    tokens already in its KV-cache (the prompt) and generates
    ``decode_steps`` tokens, one decode-step graph per token at KV
    positions ``prefill .. prefill + decode_steps - 1``.  The last position
    must fit the spec's context limit.  Frozen and hashable: the continuous
    batcher keys its step-cost memo and its join-compatibility signature on
    ``(spec, precision)``.
    """

    spec: DecodeSpec
    prefill: int = 0
    decode_steps: int = 1

    def __post_init__(self) -> None:
        from repro.graph.llm import session_positions

        positions = session_positions(self.prefill, self.decode_steps)
        self.spec.check_position(positions[-1])

    @property
    def model(self) -> str:
        """Display/model name of the session class (the spec's name)."""
        return self.spec.name

    @property
    def positions(self) -> Sequence[int]:
        """KV positions of the session's steps, in order."""
        return range(self.prefill, self.prefill + self.decode_steps)


@dataclass(frozen=True)
class Request:
    """One inference/training request entering the serving system.

    Atomic requests carry a ``graph`` and occupy a cluster for its serial
    service time.  Decode *sessions* carry a :class:`DecodeSessionSpec` in
    ``decode`` instead (``graph`` is ``None``): the continuous loop runs
    them step by step and may coalesce concurrent sessions into batched
    steps (see :class:`repro.serve.loop.ContinuousServer`).
    """

    request_id: int
    tenant: str
    model: str
    graph: Optional[WorkloadGraph]
    arrival_cycle: int
    #: Requested element precision (tenant serving class); ``None`` defers
    #: to the graph's own precision or the serving pool's default format.
    precision: Optional[str] = None
    #: Decode-session description; ``None`` for atomic requests.
    decode: Optional[DecodeSessionSpec] = None

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")
        if self.graph is None and self.decode is None:
            raise ValueError(
                "a request needs a workload graph or a decode session")


# -- per-tenant arrival-time processes (lazy, seconds domain) ----------------
def _poisson_times(rng: np.random.Generator, rps: float,
                   duration_s: float) -> Iterator[float]:
    """Homogeneous Poisson arrival times in ``[0, duration_s)``."""
    clock = 0.0
    scale = 1.0 / rps
    while True:
        for gap in rng.exponential(scale, _CHUNK).tolist():
            clock += gap
            if clock >= duration_s:
                return
            yield clock


def _diurnal_times(rng: np.random.Generator, rps: float, duration_s: float,
                   spec: ArrivalSpec) -> Iterator[float]:
    """Sinusoidally-modulated Poisson arrivals, sampled by thinning."""
    period = spec.diurnal_period_s or duration_s
    amplitude = spec.diurnal_amplitude
    lam_max = rps * (1.0 + amplitude)
    omega = 2.0 * math.pi / period
    clock = 0.0
    while True:
        gaps = rng.exponential(1.0 / lam_max, _CHUNK).tolist()
        accepts = rng.random(_CHUNK).tolist()
        for gap, u in zip(gaps, accepts):
            clock += gap
            if clock >= duration_s:
                return
            rate = rps * (1.0 + amplitude * math.sin(omega * clock))
            if u * lam_max < rate:
                yield clock


def _bursty_times(rng: np.random.Generator, rps: float, duration_s: float,
                  spec: ArrivalSpec) -> Iterator[float]:
    """Two-state Markov-modulated Poisson arrivals (quiet/burst)."""
    lam_burst = rps * spec.burst_factor
    lam_quiet = (rps * (1.0 - spec.burst_fraction * spec.burst_factor)
                 / (1.0 - spec.burst_fraction))
    mean_burst = spec.burst_cycle_s * spec.burst_fraction
    mean_quiet = spec.burst_cycle_s * (1.0 - spec.burst_fraction)
    clock = 0.0
    in_burst = False
    while clock < duration_s:
        sojourn = rng.exponential(mean_burst if in_burst else mean_quiet)
        end = min(clock + sojourn, duration_s)
        scale = 1.0 / (lam_burst if in_burst else lam_quiet)
        t = clock
        over = False
        while not over:
            for gap in rng.exponential(scale, _CHUNK).tolist():
                t += gap
                if t >= end:
                    over = True
                    break
                yield t
        clock = end
        in_burst = not in_burst


def _arrival_times(rng: np.random.Generator, rps: float, duration_s: float,
                   spec: ArrivalSpec) -> Iterator[float]:
    if spec.kind == "poisson":
        return _poisson_times(rng, rps, duration_s)
    if spec.kind == "diurnal":
        return _diurnal_times(rng, rps, duration_s, spec)
    return _bursty_times(rng, rps, duration_s, spec)


def _model_indices(rng: np.random.Generator,
                   weights: Sequence[float]) -> Iterator[int]:
    """Endless per-tenant model choices, drawn in vectorised chunks."""
    n_models = len(weights)
    if n_models == 1:
        while True:
            yield 0
    probabilities = np.asarray(weights)
    while True:
        for index in rng.choice(n_models, _CHUNK, p=probabilities).tolist():
            yield int(index)


class RequestGenerator:
    """Deterministic streaming request generator over a set of tenants."""

    def __init__(self, tenants: Sequence[TenantSpec],
                 frequency_hz: float = DEFAULT_FREQUENCY_HZ,
                 seed: int = 0) -> None:
        if not tenants:
            raise ValueError("the generator needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.tenants = tuple(tenants)
        self.frequency_hz = frequency_hz
        self.seed = seed

    def _rng(self, stream: int) -> np.random.Generator:
        """An independent child generator for one legacy traffic stream.

        ``burst()`` draws from spawned child 1 of the seed, exactly as it
        did before the streaming refactor, so closed-loop saturation bursts
        (and the committed scaling-benchmark baselines built on them) are
        bit-identical.  The open-loop streams draw from per-tenant children
        instead (see :meth:`_tenant_rng`).
        """
        children = np.random.SeedSequence(self.seed).spawn(2)
        return np.random.default_rng(children[stream])

    def _tenant_rng(self, tenant_index: int) -> np.random.Generator:
        """The independent child stream of one tenant's open-loop traffic.

        Per-tenant children are what make the merged iterator lazy: each
        tenant advances its own stream on demand, so interleaving order
        (which the merge determines) can never perturb the draws.
        """
        return np.random.default_rng(np.random.SeedSequence(
            (self.seed, _TAG_TENANT_STREAM, tenant_index)))

    @property
    def total_rps(self) -> float:
        """Aggregate mean request rate over every tenant."""
        return sum(tenant.rps for tenant in self.tenants)

    def stream(self, duration_s: float,
               arrival: Union[str, ArrivalSpec] = "poisson",
               ) -> Iterator[Request]:
        """Lazily yield the merged, arrival-ordered request stream.

        Per tenant, arrivals follow ``arrival`` (a kind name or an
        :class:`ArrivalSpec`) at the tenant's mean rate and each request
        picks a model from the tenant's weighted mix; the merged stream is
        ordered by arrival cycle (ties broken by tenant order) and numbered
        in merge order.  Memory is O(active tenants): nothing is
        materialised, which is what lets the continuous serving loop
        sustain million-request windows.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        spec = ArrivalSpec.of(arrival)
        frequency_hz = self.frequency_hz
        tenants = self.tenants
        arrivals: List[Iterator[float]] = []
        models: List[Iterator[int]] = []
        heads: List[Tuple[int, int]] = []
        for index, tenant in enumerate(tenants):
            rng = self._tenant_rng(index)
            times = _arrival_times(rng, tenant.rps, duration_s, spec)
            arrivals.append(times)
            models.append(_model_indices(rng, tenant.mix_weights))
            first = next(times, None)
            if first is not None:
                heads.append((int(first * frequency_hz), index))
        heapq.heapify(heads)
        request_id = 0
        while heads:
            cycle, index = heapq.heappop(heads)
            tenant = tenants[index]
            model = tenant.models[next(models[index])]
            yield Request(request_id=request_id, tenant=tenant.name,
                          model=model.name, graph=model.graph,
                          arrival_cycle=cycle, precision=tenant.precision)
            request_id += 1
            nxt = next(arrivals[index], None)
            if nxt is not None:
                heapq.heappush(heads, (int(nxt * frequency_hz), index))

    def generate(self, duration_s: float,
                 arrival: Union[str, ArrivalSpec] = "poisson",
                 ) -> List[Request]:
        """Eagerly materialise :meth:`stream` (small scenarios, tests).

        A thin wrapper: the returned list is element-for-element identical
        to iterating the lazy stream under the same seed (pinned by a
        regression test), so callers that need random access pay the O(n)
        memory knowingly.
        """
        return list(self.stream(duration_s, arrival))

    def burst(self, per_tenant: int) -> List[Request]:
        """A closed-loop saturation burst: every request arrives at cycle 0.

        Models still follow each tenant's mix (deterministically under the
        seed).  This is what the scaling benchmark uses: with the queue full
        from the start, throughput is limited by cluster count and critical
        paths rather than by the arrival process.
        """
        if per_tenant <= 0:
            raise ValueError("per_tenant must be positive")
        rng = self._rng(1)
        requests: List[Request] = []
        for tenant in self.tenants:
            weights = tenant.mix_weights
            for _ in range(per_tenant):
                model = tenant.models[rng.choice(len(tenant.models), p=weights)]
                requests.append(Request(
                    request_id=len(requests), tenant=tenant.name,
                    model=model.name, graph=model.graph, arrival_cycle=0,
                    precision=tenant.precision,
                ))
        return requests


# -- decode-session arrivals --------------------------------------------------
def decode_session_stream(
    sessions: Sequence[DecodeSessionSpec],
    rps: float,
    duration_s: float,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    seed: int = 0,
    tenant: str = "decode",
    precision: Optional[str] = None,
) -> Iterator[Request]:
    """Lazily yield decode-session arrivals (Poisson at aggregate ``rps``).

    Each arrival picks one of ``sessions`` uniformly (deterministically
    under ``seed``) and is stamped with the tenant name and precision
    class.  Arrival-ordered like :meth:`RequestGenerator.stream`, so it
    feeds :meth:`ContinuousServer.offer` / ``simulate`` directly.
    """
    if not sessions:
        raise ValueError("decode_session_stream needs at least one session")
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(np.random.SeedSequence((seed, 7)))
    choices = _model_indices(rng, [1.0 / len(sessions)] * len(sessions))
    request_id = 0
    for time_s in _poisson_times(rng, rps, duration_s):
        session = sessions[next(choices)]
        yield Request(
            request_id=request_id, tenant=tenant, model=session.model,
            graph=None, arrival_cycle=int(time_s * frequency_hz),
            precision=precision, decode=session,
        )
        request_id += 1


def decode_burst(
    sessions: Sequence[DecodeSessionSpec],
    count: int,
    tenant: str = "decode",
    precision: Optional[str] = None,
) -> List[Request]:
    """A closed-loop decode burst: ``count`` sessions all arriving at cycle 0.

    Session classes are assigned round-robin (deterministic without any
    randomness), which is what the batching benchmark uses: with every
    session queued from the start, throughput is limited purely by how well
    steps coalesce under the batch cap.
    """
    if not sessions:
        raise ValueError("decode_burst needs at least one session")
    if count <= 0:
        raise ValueError("count must be positive")
    return [
        Request(
            request_id=index, tenant=tenant,
            model=sessions[index % len(sessions)].model, graph=None,
            arrival_cycle=0, precision=precision,
            decode=sessions[index % len(sessions)],
        )
        for index in range(count)
    ]
