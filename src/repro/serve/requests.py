"""Serving workload description: tenants, model mixes, request generation.

A serving scenario is a set of *tenants*, each owning a mix of zoo models
and a mean request rate.  The generator draws Poisson arrivals per tenant
(exponential inter-arrival times, the standard open-loop serving model) and
picks a model per request according to the tenant's mix weights, then merges
all tenants into one arrival-ordered request stream.  Everything is
deterministic under a seed, so serving experiments are exactly repeatable.

Time is measured in *cluster clock cycles* throughout the serving simulator;
wall-clock rates (requests/s) are converted through the operating-point
frequency (default: the 22 nm performance point of the paper's cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.ir import WorkloadGraph
from repro.power.technology import OP_22NM_PERFORMANCE

#: Clock frequency used to convert requests/s into cycles (22 nm, 0.8 V).
DEFAULT_FREQUENCY_HZ = OP_22NM_PERFORMANCE.frequency_hz


@dataclass(frozen=True)
class ModelSpec:
    """One model in a tenant's mix: a workload graph plus a mix weight."""

    name: str
    graph: WorkloadGraph
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a model spec needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"model {self.name!r}: mix weight must be positive")


@dataclass(frozen=True)
class TenantSpec:
    """A tenant: a named model mix arriving at a mean request rate."""

    name: str
    models: Tuple[ModelSpec, ...]
    rps: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if not self.models:
            raise ValueError(f"tenant {self.name!r} needs at least one model")
        if self.rps <= 0:
            raise ValueError(f"tenant {self.name!r}: rps must be positive")
        object.__setattr__(self, "models", tuple(self.models))

    @property
    def mix_weights(self) -> List[float]:
        """Normalised model-mix probabilities."""
        total = sum(model.weight for model in self.models)
        return [model.weight / total for model in self.models]


@dataclass(frozen=True)
class Request:
    """One inference/training request entering the serving system."""

    request_id: int
    tenant: str
    model: str
    graph: WorkloadGraph
    arrival_cycle: int

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")


class RequestGenerator:
    """Deterministic Poisson request generator over a set of tenants."""

    def __init__(self, tenants: Sequence[TenantSpec],
                 frequency_hz: float = DEFAULT_FREQUENCY_HZ,
                 seed: int = 0) -> None:
        if not tenants:
            raise ValueError("the generator needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.tenants = tuple(tenants)
        self.frequency_hz = frequency_hz
        self.seed = seed

    def _rng(self, stream: int) -> np.random.Generator:
        """An independent child generator for one traffic stream.

        ``generate()`` and ``burst()`` draw from *separate* spawned child
        streams of the seed (``np.random.SeedSequence(seed).spawn``): a
        scenario mixing open-loop and burst traffic must not replay the
        same random sequence in both, which is exactly what the previous
        ``default_rng(self.seed)``-in-both-methods arrangement did.
        Determinism per (seed, stream) is preserved.
        """
        children = np.random.SeedSequence(self.seed).spawn(2)
        return np.random.default_rng(children[stream])

    @property
    def total_rps(self) -> float:
        """Aggregate mean request rate over every tenant."""
        return sum(tenant.rps for tenant in self.tenants)

    def generate(self, duration_s: float) -> List[Request]:
        """Poisson arrivals over a time window, merged across tenants.

        Per tenant, inter-arrival gaps are exponential with mean
        ``1 / rps`` and each request picks a model from the tenant's
        weighted mix; the merged stream is sorted by arrival cycle (ties
        broken by tenant order) and re-numbered.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = self._rng(0)
        horizon = duration_s * self.frequency_hz
        raw: List[Tuple[int, int, str, str, WorkloadGraph]] = []
        for tenant_index, tenant in enumerate(self.tenants):
            weights = tenant.mix_weights
            clock_s = 0.0
            while True:
                clock_s += rng.exponential(1.0 / tenant.rps)
                arrival = int(clock_s * self.frequency_hz)
                if arrival >= horizon:
                    break
                model = tenant.models[rng.choice(len(tenant.models), p=weights)]
                raw.append((arrival, tenant_index, tenant.name, model.name,
                            model.graph))
        raw.sort(key=lambda item: (item[0], item[1]))
        return [
            Request(request_id=index, tenant=tenant, model=model,
                    graph=graph, arrival_cycle=arrival)
            for index, (arrival, _, tenant, model, graph) in enumerate(raw)
        ]

    def burst(self, per_tenant: int) -> List[Request]:
        """A closed-loop saturation burst: every request arrives at cycle 0.

        Models still follow each tenant's mix (deterministically under the
        seed).  This is what the scaling benchmark uses: with the queue full
        from the start, throughput is limited by cluster count and critical
        paths rather than by the arrival process.
        """
        if per_tenant <= 0:
            raise ValueError("per_tenant must be positive")
        rng = self._rng(1)
        requests: List[Request] = []
        for tenant in self.tenants:
            weights = tenant.mix_weights
            for _ in range(per_tenant):
                model = tenant.models[rng.choice(len(tenant.models), p=weights)]
                requests.append(Request(
                    request_id=len(requests), tenant=tenant.name,
                    model=model.name, graph=model.graph, arrival_cycle=0,
                ))
        return requests
