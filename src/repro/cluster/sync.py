"""Cluster event unit / hardware synchroniser.

PULP clusters synchronise cores and accelerators through a hardware event
unit: cores sleep on an event line (clock-gated) and are woken by barriers,
HWPE done events or DMA completion.  Only the timing side matters here: how
many cycles a barrier costs, and the bookkeeping of which events are pending,
used by the cluster model and by the software-baseline parallel overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


@dataclass
class EventUnit:
    """Event lines and barrier timing of the cluster."""

    #: Number of cores connected to the unit.
    n_cores: int = 8
    #: Cycles for a full-cluster hardware barrier (all cores sleep + wake).
    barrier_cycles: int = 40
    #: Cycles from an event being raised to the sleeping core resuming.
    wakeup_cycles: int = 10
    #: Currently pending events, by name.
    pending: Set[str] = field(default_factory=set)
    #: Count of raised events by name (statistics).
    raised: Dict[str, int] = field(default_factory=dict)

    def raise_event(self, name: str) -> None:
        """Raise an event line (e.g. ``"redmule_done"`` or ``"dma_done"``)."""
        self.pending.add(name)
        self.raised[name] = self.raised.get(name, 0) + 1

    def wait_event(self, name: str) -> int:
        """Consume an event and return the wake-up cost in cycles.

        If the event has not been raised yet the caller is responsible for
        accounting the actual waiting time; the returned value only covers the
        wake-up propagation.
        """
        self.pending.discard(name)
        return self.wakeup_cycles

    def barrier(self) -> int:
        """Return the cost of a full-cluster barrier."""
        return self.barrier_cycles

    def has_pending(self, name: str) -> bool:
        """True if ``name`` has been raised and not yet consumed."""
        return name in self.pending
