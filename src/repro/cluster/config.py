"""Cluster-level configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.l2 import L2Config
from repro.mem.tcdm import TcdmConfig
from repro.redmule.config import RedMulEConfig


@dataclass(frozen=True)
class ClusterConfig:
    """Static parameters of the PULP cluster hosting RedMulE.

    The defaults describe the 8-core, 16-bank cluster of the paper with the
    reference RedMulE instance (H=4, L=8, P=3).
    """

    #: Number of RISC-V cores.
    n_cores: int = 8
    #: TCDM geometry.
    tcdm: TcdmConfig = field(default_factory=TcdmConfig)
    #: L2 memory geometry and DMA-visible timing.
    l2: L2Config = field(default_factory=L2Config)
    #: RedMulE instance integrated as HWPE.
    redmule: RedMulEConfig = field(default_factory=RedMulEConfig.reference)
    #: Maximum consecutive contended cycles granted to the HWPE wide port.
    hci_max_wide_streak: int = 4
    #: Cycles for one core store to an HWPE register (peripheral interconnect).
    periph_write_cycles: int = 2
    #: Cycles from the HWPE done event to the core resuming execution.
    event_wakeup_cycles: int = 10

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("the cluster needs at least one core")
        if self.redmule.n_mem_ports > self.tcdm.n_banks:
            raise ValueError(
                f"RedMulE needs {self.redmule.n_mem_ports} adjacent TCDM banks "
                f"but the cluster only has {self.tcdm.n_banks}"
            )

    @property
    def offload_cycles(self) -> int:
        """Core cycles to program and trigger one RedMulE job.

        Nine job registers plus the trigger register, each written through
        the peripheral interconnect, plus the event wake-up at completion.
        """
        return 10 * self.periph_write_cycles + self.event_wakeup_cycles
