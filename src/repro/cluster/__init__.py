"""PULP cluster substrate.

The cluster is the host system RedMulE plugs into: 8 RISC-V cores, a
multi-banked TCDM behind the HCI, a DMA engine toward the L2 memory, an event
unit for synchronisation, and the peripheral interconnect through which the
cores program HWPEs.  The models here provide the timing context for the
paper's experiments -- offload cost, software baseline execution, DMA-based
tiling from L2 -- without modelling the cores at the instruction level.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.core import InstructionCosts, RiscvCore
from repro.cluster.dma import DmaEngine, DmaTransfer
from repro.cluster.sync import EventUnit
from repro.cluster.cluster import PulpCluster, OffloadResult
from repro.cluster.tiler import (
    TiledMatmul,
    TiledMatmulPlan,
    TiledMatmulResult,
    estimate_tiled_matmul,
    plan_tiled_matmul,
)

__all__ = [
    "ClusterConfig",
    "DmaEngine",
    "DmaTransfer",
    "EventUnit",
    "InstructionCosts",
    "OffloadResult",
    "PulpCluster",
    "RiscvCore",
    "TiledMatmul",
    "TiledMatmulPlan",
    "TiledMatmulResult",
    "estimate_tiled_matmul",
    "plan_tiled_matmul",
]
