"""PULP cluster top level.

:class:`PulpCluster` assembles the full system of Fig. 1: TCDM + HCI,
RedMulE as an HWPE, the DMA toward L2, the event unit and the cores.  It is
the object examples and workloads interact with:

* :meth:`PulpCluster.offload_matmul` runs a matmul on the accelerator exactly
  as bare-metal software would (allocate in TCDM, program the register file,
  trigger, wait for the event), returning both the numerical result and the
  cycle accounting including the offload overhead;
* :meth:`PulpCluster.software_matmul` prices the same job on the 8-core
  software baseline;
* :meth:`PulpCluster.offload_matmul_from_l2` adds DMA tiling for operands
  resident in L2 (double-buffered, DMA overlapped with compute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.core import RiscvCore
from repro.cluster.dma import DmaEngine, DmaTransfer
from repro.cluster.sync import EventUnit
from repro.interco.hci import Hci, HciConfig
from repro.mem.l2 import L2Memory
from repro.mem.layout import MatrixHandle, MemoryAllocator
from repro.mem.tcdm import Tcdm
from repro.redmule.engine import RedMulE, RedMulEResult
from repro.redmule.job import MatmulJob
from repro.redmule.perf_model import RedMulEPerfModel
from repro.sw.baseline import SoftwareBaseline, SoftwareResult


@dataclass(frozen=True)
class OffloadResult:
    """Cycle accounting of one accelerator offload seen from the core."""

    #: Result of the accelerator job itself.
    accelerator: RedMulEResult
    #: Core cycles spent programming the job and waking up afterwards.
    offload_cycles: float
    #: DMA cycles that could not be hidden behind compute (L2 tiling only).
    exposed_dma_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles as seen by the calling core."""
        return self.accelerator.cycles + self.offload_cycles + self.exposed_dma_cycles

    @property
    def macs_per_cycle(self) -> float:
        """Useful MAC throughput including the offload overhead."""
        if self.total_cycles == 0:
            return 0.0
        return self.accelerator.total_macs / self.total_cycles


class PulpCluster:
    """The 8-core PULP cluster with RedMulE attached as an HWPE."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 exact_arithmetic: Optional[bool] = None,
                 arithmetic: Optional[str] = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.tcdm = Tcdm(self.config.tcdm)
        self.hci = Hci(
            self.tcdm,
            HciConfig(
                n_log_initiators=self.config.n_cores + 1,
                n_wide_ports=self.config.redmule.n_mem_ports,
                max_wide_streak=self.config.hci_max_wide_streak,
            ),
        )
        self.l2 = L2Memory(self.config.l2)
        self.dma = DmaEngine(self.l2, self.tcdm)
        self.event_unit = EventUnit(n_cores=self.config.n_cores)
        self.cores = [RiscvCore(i) for i in range(self.config.n_cores)]
        # Backend precedence: explicit `arithmetic` name > legacy
        # `exact_arithmetic` boolean > the configuration's arithmetic field.
        self.redmule = RedMulE(self.config.redmule, self.hci,
                               exact=exact_arithmetic,
                               backend=arithmetic)
        self.software = SoftwareBaseline(n_cores=self.config.n_cores)
        self.perf_model = RedMulEPerfModel(self.config.redmule)
        self._allocator = MemoryAllocator(self.tcdm.base, self.tcdm.size)
        self._l2_allocator = MemoryAllocator(self.l2.base, self.l2.size)

    # -- memory management -------------------------------------------------
    def tcdm_allocator(self) -> MemoryAllocator:
        """The cluster's TCDM bump allocator (shared by all callers)."""
        return self._allocator

    def l2_allocator(self) -> MemoryAllocator:
        """The L2 bump allocator."""
        return self._l2_allocator

    def reset_tcdm(self) -> None:
        """Release all TCDM allocations (contents are left in place)."""
        self._allocator.reset()

    def place_matrix(self, matrix: np.ndarray, name: str = "matrix",
                     in_l2: bool = False) -> MatrixHandle:
        """Allocate and store a matrix in TCDM (or L2)."""
        rows, cols = matrix.shape
        if in_l2:
            handle = self._l2_allocator.alloc_matrix(rows, cols, name)
            handle.store(self.l2, matrix)
        else:
            handle = self._allocator.alloc_matrix(rows, cols, name)
            handle.store(self.tcdm, matrix)
        return handle

    # -- accelerator path --------------------------------------------------
    def offload_matmul(self, x: MatrixHandle, w: MatrixHandle,
                       z: MatrixHandle, core_id: int = 0,
                       accumulate: bool = False) -> OffloadResult:
        """Run ``Z = X . W`` (or ``Z += X . W``) on RedMulE.

        Operands must already be resident in the TCDM; ``accumulate=True``
        pre-loads the existing Z contents into the accumulators, which is how
        tiled GEMMs and bias additions are composed from multiple jobs.
        """
        job = MatmulJob.from_handles(x, w, z, accumulate=accumulate)
        core = self.cores[core_id]
        offload_cycles = core.offload_cycles(
            n_job_registers=10, include_wait=False
        )
        result = self.redmule.offload(job)
        self.event_unit.raise_event("redmule_done")
        offload_cycles += self.event_unit.wait_event("redmule_done")
        return OffloadResult(accelerator=result, offload_cycles=offload_cycles)

    def matmul(self, x: np.ndarray, w: np.ndarray,
               core_id: int = 0) -> Tuple[np.ndarray, OffloadResult]:
        """Convenience wrapper: place operands, run on RedMulE, read back Z."""
        hx = self.place_matrix(x, "X")
        hw = self.place_matrix(w, "W")
        hz = self._allocator.alloc_matrix(x.shape[0], w.shape[1], "Z")
        outcome = self.offload_matmul(hx, hw, hz, core_id=core_id)
        return hz.load(self.tcdm), outcome

    def offload_matmul_from_l2(self, x: MatrixHandle, w: MatrixHandle,
                               z: MatrixHandle,
                               core_id: int = 0) -> OffloadResult:
        """Run a matmul whose operands live in L2, tiling through the TCDM.

        The DMA copies X and W into TCDM, the accelerator runs, and Z is
        copied back.  The inbound DMA of a tile is overlapped with the
        accelerator's processing of the previous tile (double buffering), so
        only the first fill and the final write-back are exposed -- unless the
        transfer is bandwidth-bound, in which case the exposed time grows.
        """
        x_matrix = x.load(self.l2)
        w_matrix = w.load(self.l2)

        tcdm_mark = self._allocator.mark()
        hx = self.place_matrix(x_matrix, "X.tile")
        hw = self.place_matrix(w_matrix, "W.tile")
        hz = self._allocator.alloc_matrix(z.rows, z.cols, "Z.tile")

        dma_in = self.dma.execute(DmaTransfer(
            src=x.base, dst=hx.base, row_bytes=x.cols * 2, rows=x.rows,
            src_stride=x.row_stride,
        ))
        dma_in += self.dma.execute(DmaTransfer(
            src=w.base, dst=hw.base, row_bytes=w.cols * 2, rows=w.rows,
            src_stride=w.row_stride,
        ))

        outcome = self.offload_matmul(hx, hw, hz, core_id=core_id)

        z_matrix = hz.load(self.tcdm)
        z.store(self.l2, z_matrix)
        dma_out = self.dma.execute(DmaTransfer(
            src=hz.base, dst=z.base, row_bytes=z.cols * 2, rows=z.rows,
            dst_stride=z.row_stride,
        ))

        # Double buffering hides the inbound DMA behind the previous job and
        # the outbound DMA behind the next one; what cannot be hidden is the
        # amount by which DMA exceeds the compute time.
        hidden = min(dma_in + dma_out, outcome.accelerator.cycles)
        exposed = (dma_in + dma_out) - hidden

        # Release the temporary TCDM tile allocations.
        self._allocator.release_to(tcdm_mark)

        return OffloadResult(
            accelerator=outcome.accelerator,
            offload_cycles=outcome.offload_cycles,
            exposed_dma_cycles=exposed,
        )

    # -- software path --------------------------------------------------------
    def software_matmul(self, m: int, n: int, k: int) -> SoftwareResult:
        """Price the same matmul on the 8-core software baseline."""
        return self.software.run_gemm(m, n, k)

    # -- reporting ----------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary of the cluster configuration."""
        return (
            f"PULP cluster: {self.config.n_cores} cores, "
            f"{self.config.tcdm.n_banks}-bank TCDM "
            f"({self.config.tcdm.size // 1024} KiB), "
            f"{self.config.redmule.describe()}"
        )
