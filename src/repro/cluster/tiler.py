"""Tiled execution of GEMMs that do not fit the TCDM.

The TCDM of the cluster is small (128 KiB in the reference configuration), so
any realistically sized layer -- e.g. the batched auto-encoder layers whose
working set lives in L2 -- must be processed as a sequence of accelerator jobs
over tiles of the operands, with the DMA moving tiles between L2 and TCDM and
the accelerator accumulating partial products across inner-dimension tiles
(``Z += X . W`` jobs, see :class:`repro.redmule.job.MatmulJob`).

Two pieces are provided:

* :func:`plan_tiled_matmul` -- choose tile sizes that fit a TCDM budget
  (honouring the accelerator's natural granularities: multiples of ``L`` rows
  and ``block_k`` columns) and predict the job count, DMA traffic and cycle
  count with DMA/compute overlap;
* :class:`TiledMatmul` -- execute the plan on a :class:`~repro.cluster.cluster.
  PulpCluster`: real DMA transfers, real accelerator jobs, result written back
  to L2, cycle accounting returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.dma import DmaTransfer
from repro.mem.layout import ELEMENT_BYTES, MatrixHandle
from repro.redmule.config import RedMulEConfig
from repro.redmule.perf_model import RedMulEPerfModel


@dataclass(frozen=True)
class TiledMatmulPlan:
    """A tiling plan for ``Z[M,K] = X[M,N] . W[N,K]`` through the TCDM."""

    m: int
    n: int
    k: int
    tile_m: int
    tile_n: int
    tile_k: int
    tcdm_budget_bytes: int
    #: Bytes per matrix element (2 for FP16/BF16, 1 for FP8).
    element_bytes: int = ELEMENT_BYTES

    # ------------------------------------------------------------------
    @property
    def tiles_m(self) -> int:
        """Number of tiles along M."""
        return -(-self.m // self.tile_m)

    @property
    def tiles_n(self) -> int:
        """Number of tiles along the inner dimension (accumulation depth)."""
        return -(-self.n // self.tile_n)

    @property
    def tiles_k(self) -> int:
        """Number of tiles along K."""
        return -(-self.k // self.tile_k)

    @property
    def n_jobs(self) -> int:
        """Total accelerator jobs the plan issues."""
        return self.tiles_m * self.tiles_n * self.tiles_k

    @property
    def tile_footprint_bytes(self) -> int:
        """TCDM bytes needed for one in-flight tile set (X, W and Z tiles)."""
        elements = (self.tile_m * self.tile_n + self.tile_n * self.tile_k
                    + self.tile_m * self.tile_k)
        return elements * self.element_bytes

    @property
    def dma_bytes(self) -> int:
        """Total bytes moved by the DMA over the whole plan.

        Every X tile is loaded once per K tile, every W tile once per M tile,
        and every Z tile is written back once.
        """
        x_bytes = self.m * self.n * self.element_bytes * self.tiles_k
        w_bytes = self.n * self.k * self.element_bytes * self.tiles_m
        z_bytes = self.m * self.k * self.element_bytes
        return x_bytes + w_bytes + z_bytes

    def describe(self) -> str:
        """One-line summary of the plan."""
        return (
            f"{self.m}x{self.n}x{self.k} as "
            f"{self.tiles_m}x{self.tiles_n}x{self.tiles_k} tiles of "
            f"{self.tile_m}x{self.tile_n}x{self.tile_k} "
            f"({self.n_jobs} jobs, {self.tile_footprint_bytes} B/tile-set)"
        )


@dataclass
class TiledMatmulResult:
    """Cycle accounting of an executed tiling plan."""

    plan: TiledMatmulPlan
    #: Sum of the accelerator cycles of every job.
    compute_cycles: float
    #: Total DMA busy cycles.
    dma_cycles: float
    #: DMA cycles that could not be hidden behind accelerator jobs.
    exposed_dma_cycles: float
    #: Core-side offload cycles (register programming, events).
    offload_cycles: float
    #: Jobs executed.
    n_jobs: int

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles with DMA/compute overlap."""
        return self.compute_cycles + self.exposed_dma_cycles + self.offload_cycles


def _round_down_multiple(value: int, granule: int, minimum: int) -> int:
    """Round ``value`` down to a multiple of ``granule`` (at least ``minimum``)."""
    rounded = max((value // granule) * granule, minimum)
    return rounded


def plan_tiled_matmul(
    m: int,
    n: int,
    k: int,
    config: Optional[RedMulEConfig] = None,
    tcdm_budget_bytes: int = 96 * 1024,
) -> TiledMatmulPlan:
    """Choose tile sizes for a GEMM so one tile set fits the TCDM budget.

    The heuristic keeps the inner dimension tile as large as possible first
    (deep accumulation minimises Z re-reads), then grows M and K tiles to the
    accelerator's natural granularities (multiples of ``L`` and ``block_k``).
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError("matrix dimensions must be positive")
    if tcdm_budget_bytes < 8 * 1024:
        raise ValueError("a TCDM budget below 8 KiB is not practical")
    config = config or RedMulEConfig.reference()
    element_bytes = config.element_bytes

    def footprint(tile_m: int, tile_n: int, tile_k: int) -> int:
        elements = tile_m * tile_n + tile_n * tile_k + tile_m * tile_k
        return elements * element_bytes

    tile_m, tile_n, tile_k = m, n, k
    # Shrink the largest dimension (in granule steps) until the tile set fits.
    while footprint(tile_m, tile_n, tile_k) > tcdm_budget_bytes:
        candidates = [
            ("m", tile_m, config.length),
            ("n", tile_n, config.elements_per_line),
            ("k", tile_k, config.elements_per_line),
        ]
        # Prefer shrinking the largest tile dimension; never go below one
        # hardware granule.
        candidates.sort(key=lambda item: item[1], reverse=True)
        shrunk = False
        for name, value, granule in candidates:
            if value <= granule:
                continue
            new_value = _round_down_multiple(value - granule, granule, granule)
            if name == "m":
                tile_m = new_value
            elif name == "n":
                tile_n = new_value
            else:
                tile_k = new_value
            shrunk = True
            break
        if not shrunk:
            raise ValueError(
                f"cannot tile {m}x{n}x{k} into a {tcdm_budget_bytes}-byte budget"
            )
    return TiledMatmulPlan(m=m, n=n, k=k, tile_m=tile_m, tile_n=tile_n,
                           tile_k=tile_k, tcdm_budget_bytes=tcdm_budget_bytes,
                           element_bytes=element_bytes)


def estimate_tiled_matmul(plan: TiledMatmulPlan,
                          config: Optional[RedMulEConfig] = None,
                          dma_bytes_per_cycle: float = 8.0,
                          offload_cycles_per_job: float = 30.0) -> TiledMatmulResult:
    """Analytical cycle estimate of a tiling plan (no simulation).

    Compute cycles come from the accelerator performance model per tile; DMA
    time is overlapped with compute (double buffering) and only the amount by
    which it exceeds the compute time of a job is exposed.
    """
    config = config or RedMulEConfig.reference()
    model = RedMulEPerfModel(config)
    per_job_cycles = model.estimate_gemm(plan.tile_m, plan.tile_n, plan.tile_k).cycles
    compute = per_job_cycles * plan.n_jobs
    dma = plan.dma_bytes / dma_bytes_per_cycle
    exposed = max(0.0, dma - compute) + min(dma, per_job_cycles)
    offload = offload_cycles_per_job * plan.n_jobs
    return TiledMatmulResult(
        plan=plan,
        compute_cycles=compute,
        dma_cycles=dma,
        exposed_dma_cycles=exposed,
        offload_cycles=offload,
        n_jobs=plan.n_jobs,
    )


class TiledMatmul:
    """Execute a tiling plan on a :class:`~repro.cluster.cluster.PulpCluster`."""

    def __init__(self, cluster, plan: TiledMatmulPlan) -> None:
        self.cluster = cluster
        self.plan = plan

    def run(self, x_l2: MatrixHandle, w_l2: MatrixHandle,
            z_l2: MatrixHandle) -> TiledMatmulResult:
        """Run ``Z = X . W`` with all operands resident in L2.

        The result matrix in L2 is overwritten with the product; cycle
        accounting (compute, DMA, offload, overlap) is returned.
        """
        plan = self.plan
        cluster = self.cluster
        if (x_l2.rows, x_l2.cols) != (plan.m, plan.n):
            raise ValueError("X handle does not match the plan")
        if (w_l2.rows, w_l2.cols) != (plan.n, plan.k):
            raise ValueError("W handle does not match the plan")
        if (z_l2.rows, z_l2.cols) != (plan.m, plan.k):
            raise ValueError("Z handle does not match the plan")

        allocator = cluster.tcdm_allocator()
        mark = allocator.mark()
        x_tile = allocator.alloc_matrix(plan.tile_m, plan.tile_n, "tiler.X")
        w_tile = allocator.alloc_matrix(plan.tile_n, plan.tile_k, "tiler.W")
        z_tile = allocator.alloc_matrix(plan.tile_m, plan.tile_k, "tiler.Z")

        compute_cycles = 0.0
        offload_cycles = 0.0
        dma_cycles = 0.0
        exposed_dma = 0.0
        jobs = 0

        for m0 in range(0, plan.m, plan.tile_m):
            rows = min(plan.tile_m, plan.m - m0)
            for k0 in range(0, plan.k, plan.tile_k):
                cols = min(plan.tile_k, plan.k - k0)
                # Fresh accumulator tile.
                z_view = MatrixHandle(z_tile.base, rows, cols,
                                      row_stride=z_tile.row_stride,
                                      name="tiler.Zv")
                z_view.store(cluster.tcdm, np.zeros((rows, cols),
                                                    dtype=np.float32))
                for n0 in range(0, plan.n, plan.tile_n):
                    inner = min(plan.tile_n, plan.n - n0)
                    dma_in = cluster.dma.execute(DmaTransfer(
                        src=x_l2.address_of(m0, n0), dst=x_tile.base,
                        row_bytes=inner * ELEMENT_BYTES, rows=rows,
                        src_stride=x_l2.row_stride,
                        dst_stride=x_tile.row_stride,
                    ))
                    dma_in += cluster.dma.execute(DmaTransfer(
                        src=w_l2.address_of(n0, k0), dst=w_tile.base,
                        row_bytes=cols * ELEMENT_BYTES, rows=inner,
                        src_stride=w_l2.row_stride,
                        dst_stride=w_tile.row_stride,
                    ))
                    x_view = MatrixHandle(x_tile.base, rows, inner,
                                          row_stride=x_tile.row_stride,
                                          name="tiler.Xv")
                    w_view = MatrixHandle(w_tile.base, inner, cols,
                                          row_stride=w_tile.row_stride,
                                          name="tiler.Wv")
                    outcome = cluster.offload_matmul(x_view, w_view, z_view,
                                                     accumulate=True)
                    jobs += 1
                    compute_cycles += outcome.accelerator.cycles
                    offload_cycles += outcome.offload_cycles
                    dma_cycles += dma_in
                    # Double buffering hides the inbound DMA behind the
                    # previous job; only the excess is exposed.
                    exposed_dma += max(0.0, dma_in - outcome.accelerator.cycles)
                # Write the finished Z tile back to L2.
                dma_out = cluster.dma.execute(DmaTransfer(
                    src=z_tile.base, dst=z_l2.address_of(m0, k0),
                    row_bytes=cols * ELEMENT_BYTES, rows=rows,
                    src_stride=z_tile.row_stride,
                    dst_stride=z_l2.row_stride,
                ))
                dma_cycles += dma_out
                exposed_dma += max(0.0, dma_out - compute_cycles / max(jobs, 1))

        # The very first inbound DMA cannot be hidden behind anything.
        first_tile_fill = cluster.l2.burst_cycles(
            plan.tile_m * plan.tile_n * ELEMENT_BYTES
        )
        exposed_dma += first_tile_fill

        allocator.release_to(mark)
        return TiledMatmulResult(
            plan=plan,
            compute_cycles=compute_cycles,
            dma_cycles=dma_cycles,
            exposed_dma_cycles=exposed_dma,
            offload_cycles=offload_cycles,
            n_jobs=jobs,
        )
