"""Cluster DMA engine.

The cluster DMA moves data between the L2 memory and the TCDM in the
background of core / accelerator execution.  For the RedMulE experiments it
matters when operands do not fit the TCDM (the batched auto-encoder
activations live in L2) and must be tiled in and out around accelerator jobs.

The model is functional (bytes are really copied between the two memory
models) and timed at the burst level: a transfer costs the L2-side burst
latency plus one beat per ``bytes_per_cycle``, and 2-D (strided) transfers pay
the per-row burst setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.l2 import L2Memory
from repro.mem.tcdm import Tcdm


@dataclass(frozen=True)
class DmaTransfer:
    """Descriptor of one DMA transfer (possibly 2-D)."""

    #: Source byte address.
    src: int
    #: Destination byte address.
    dst: int
    #: Bytes per row.
    row_bytes: int
    #: Number of rows (1 for a flat transfer).
    rows: int = 1
    #: Source stride between row starts (defaults to contiguous).
    src_stride: Optional[int] = None
    #: Destination stride between row starts (defaults to contiguous).
    dst_stride: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        """Payload bytes moved."""
        return self.row_bytes * self.rows


class DmaEngine:
    """Functional + timed DMA between L2 and TCDM."""

    def __init__(self, l2: L2Memory, tcdm: Tcdm) -> None:
        self.l2 = l2
        self.tcdm = tcdm
        #: Total bytes moved since reset.
        self.bytes_moved = 0
        #: Total DMA busy cycles since reset.
        self.busy_cycles = 0
        #: Number of transfers issued.
        self.transfers = 0

    # ------------------------------------------------------------------
    def _owner(self, addr: int):
        if self.tcdm.config.base <= addr < self.tcdm.config.base + self.tcdm.size:
            return self.tcdm
        return self.l2

    def _copy_row(self, src: int, dst: int, nbytes: int) -> None:
        source = self._owner(src)
        destination = self._owner(dst)
        data = source.dump_image(src, nbytes)
        destination.load_image(dst, data)

    def transfer_cycles(self, transfer: DmaTransfer) -> int:
        """Cycles the DMA is busy executing ``transfer``."""
        per_row = self.l2.burst_cycles(transfer.row_bytes)
        return per_row * transfer.rows

    def execute(self, transfer: DmaTransfer) -> int:
        """Perform the transfer (copy bytes) and return its cycle cost."""
        if transfer.row_bytes <= 0 or transfer.rows <= 0:
            raise ValueError("transfer must move at least one byte")
        src_stride = transfer.src_stride or transfer.row_bytes
        dst_stride = transfer.dst_stride or transfer.row_bytes
        for row in range(transfer.rows):
            self._copy_row(
                transfer.src + row * src_stride,
                transfer.dst + row * dst_stride,
                transfer.row_bytes,
            )
        cycles = self.transfer_cycles(transfer)
        self.bytes_moved += transfer.total_bytes
        self.busy_cycles += cycles
        self.transfers += 1
        return cycles

    def reset_stats(self) -> None:
        """Clear the traffic counters."""
        self.bytes_moved = 0
        self.busy_cycles = 0
        self.transfers = 0
