"""RISC-V core timing model.

The cluster cores (RI5CY-class, RV32IMFC with FP16 extensions) matter to the
RedMulE experiments in two ways: they run the software baseline (modelled at
the kernel level in :mod:`repro.sw`) and they pay the offload cost of
programming the accelerator.  This module provides a small instruction-cost
model that both uses: a cost table for the instruction classes that appear in
the kernels, and a helper to price short instruction sequences such as the
offload stub.

The cost table follows the RI5CY pipeline: single-cycle ALU, single-cycle
TCDM loads (when conflict-free), 2-cycle taken branches, and FP16 operations
executed by the shared FPnew instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class InstructionCosts:
    """Cycles charged per instruction class."""

    alu: float = 1.0
    mul: float = 1.0
    load: float = 1.0
    store: float = 1.0
    branch_taken: float = 2.0
    branch_not_taken: float = 1.0
    #: FP16 fused multiply-add on the shared FPU.
    fp16_fma: float = 1.0
    #: Extra average cycles when two cores contend for the shared FPU.
    fp16_fma_contended: float = 2.0
    #: Store to a memory-mapped peripheral register (HWPE register file).
    periph_store: float = 2.0
    #: Read of a peripheral register.
    periph_load: float = 2.0
    #: Cycles spent sleeping on the event unit before wake-up propagates.
    event_wait: float = 10.0

    def as_dict(self) -> Dict[str, float]:
        """Cost table as a plain dictionary keyed by instruction class."""
        return {
            "alu": self.alu,
            "mul": self.mul,
            "load": self.load,
            "store": self.store,
            "branch_taken": self.branch_taken,
            "branch_not_taken": self.branch_not_taken,
            "fp16_fma": self.fp16_fma,
            "fp16_fma_contended": self.fp16_fma_contended,
            "periph_store": self.periph_store,
            "periph_load": self.periph_load,
            "event_wait": self.event_wait,
        }


class RiscvCore:
    """One cluster core: prices instruction sequences and tracks busy cycles."""

    def __init__(self, core_id: int,
                 costs: InstructionCosts = InstructionCosts()) -> None:
        self.core_id = core_id
        self.costs = costs
        #: Total cycles this core has been charged.
        self.cycles = 0.0
        #: Per-class instruction counts (profiling aid).
        self.retired: Dict[str, int] = {}

    def execute(self, instructions: Iterable[Tuple[str, int]]) -> float:
        """Charge a sequence of ``(instruction_class, count)`` pairs.

        Returns the cycles of this sequence and accumulates them on the core.
        """
        table = self.costs.as_dict()
        cycles = 0.0
        for kind, count in instructions:
            if kind not in table:
                raise KeyError(f"unknown instruction class {kind!r}")
            if count < 0:
                raise ValueError("instruction count must be non-negative")
            cycles += table[kind] * count
            self.retired[kind] = self.retired.get(kind, 0) + count
        self.cycles += cycles
        return cycles

    # -- canned sequences -------------------------------------------------
    def offload_sequence(self, n_job_registers: int = 9) -> List[Tuple[str, int]]:
        """Instruction sequence to program and trigger one HWPE job."""
        return [
            ("periph_load", 1),            # acquire
            ("alu", n_job_registers),      # materialise register values
            ("periph_store", n_job_registers),
            ("periph_store", 1),           # trigger
        ]

    def offload_cycles(self, n_job_registers: int = 9,
                       include_wait: bool = True) -> float:
        """Cycles for one accelerator offload, optionally including the wait."""
        sequence = self.offload_sequence(n_job_registers)
        if include_wait:
            sequence = sequence + [("event_wait", 1)]
        return self.execute(sequence)

    def reset(self) -> None:
        """Clear accumulated cycles and profiling counters."""
        self.cycles = 0.0
        self.retired.clear()
