"""Performance metrics, state-of-the-art comparison data and report rendering."""

from repro.perf.metrics import (
    WorkloadTiming,
    fraction_of_ideal,
    gflops,
    gmacs,
    speedup,
    time_workload_hw,
    time_workload_sw,
)
from repro.perf.comparison import SOA_ENTRIES, SoaEntry, our_entries
from repro.perf.report import TextTable

__all__ = [
    "SOA_ENTRIES",
    "SoaEntry",
    "TextTable",
    "WorkloadTiming",
    "fraction_of_ideal",
    "gflops",
    "gmacs",
    "our_entries",
    "speedup",
    "time_workload_hw",
    "time_workload_sw",
]
