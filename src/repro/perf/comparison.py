"""State-of-the-art comparison data (Table I).

The published rows of Table I (other people's chips) are reproduced verbatim
as reference data; the "Our work" rows are *computed* from this repository's
models (area, power, throughput, efficiency) so the benchmark that regenerates
Table I actually exercises the reproduction rather than echoing constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.power.area import ClusterAreaModel
from repro.power.energy import EnergyModel
from repro.power.technology import (
    OP_22NM_EFFICIENCY,
    OP_22NM_PERFORMANCE,
    OP_65NM_NOMINAL,
    OperatingPoint,
    TECH_22NM,
    TECH_65NM,
    TechnologyParams,
)
from repro.farm import SimulationFarm, farm_for_config
from repro.redmule.config import RedMulEConfig


@dataclass(frozen=True)
class SoaEntry:
    """One row of the state-of-the-art comparison table."""

    category: str
    design: str
    technology_nm: int
    area_mm2: Optional[float]
    frequency_mhz: Optional[float]
    voltage_v: Optional[float]
    power_mw: Optional[float]
    performance_gops: Optional[float]
    efficiency_gops_w: Optional[float]
    mac_units: Optional[int]
    precision: str

    def as_row(self) -> List[str]:
        """Render the entry as a list of table cells."""
        def fmt(value, pattern="{:.3g}"):
            return "-" if value is None else pattern.format(value)

        return [
            self.category,
            self.design,
            str(self.technology_nm),
            fmt(self.area_mm2),
            fmt(self.frequency_mhz),
            fmt(self.voltage_v),
            fmt(self.power_mw),
            fmt(self.performance_gops),
            fmt(self.efficiency_gops_w),
            fmt(self.mac_units, "{:d}"),
            self.precision,
        ]


#: Published rows of Table I (best-efficiency operating point of each design).
SOA_ENTRIES: List[SoaEntry] = [
    SoaEntry("GPU", "NVIDIA A100", 7, None, 1410, None, 300000, None, None,
             256, "FP16"),
    SoaEntry("Inference", "Eyeriss", 65, 12.25, 250, 1.0, 278, 46, 166,
             168, "INT16"),
    SoaEntry("Inference", "EIE", 45, 40.8, 800, None, 590, 102, 173,
             64, "INT8"),
    SoaEntry("Inference", "Zeng et al.", 65, 2.14, 250, None, 478, 1152, 2410,
             256, "INT8"),
    SoaEntry("Inference", "Simba", 16, 6.0, 161, 0.42, None, None, 9100,
             1024, "INT8"),
    SoaEntry("Training", "IBM (Agrawal et al.)", 7, 19.6, 1000, 0.55, 4400,
             8000, 1800, 4096, "FP16"),
    SoaEntry("Training", "Cambricon-Q", 45, 888, 1000, 0.6, 1030, 2000, 2240,
             1024, "INT8"),
    SoaEntry("HPC", "Manticore", 22, 888, 500, 0.6, 200, 25, 188, 24, "FP64"),
    SoaEntry("Mat-Mul Acc.", "Anders et al.", 14, 0.024, 2.1, 0.26, 0.023,
             0.068, 2970, 16, "FP16"),
]

#: Paper-reported values for the "Our work" rows, used as reproduction targets.
PAPER_OUR_WORK = {
    "22nm-efficiency": {"area_mm2": 0.5, "freq_mhz": 476, "voltage_v": 0.65,
                        "power_mw": 43.5, "performance_gops": 30,
                        "efficiency_gops_w": 688},
    "22nm-performance": {"area_mm2": 0.5, "freq_mhz": 666, "voltage_v": 0.80,
                         "power_mw": 90.7, "performance_gops": 42,
                         "efficiency_gops_w": 462},
    "65nm": {"area_mm2": 3.85, "freq_mhz": 200, "voltage_v": 1.2,
             "power_mw": 89.1, "performance_gops": 12.6,
             "efficiency_gops_w": 152},
}

#: GEMM shape used to measure the sustained utilisation entering the
#: "Our work" rows (large enough to sit on the utilisation plateau).
_LARGE_GEMM = (512, 512, 512)


def _our_entry(config: RedMulEConfig, technology: TechnologyParams,
               point: OperatingPoint, label: str,
               farm: SimulationFarm) -> SoaEntry:
    estimate = farm.estimate_gemm(*_LARGE_GEMM)
    utilisation = estimate.utilisation

    energy = EnergyModel(config, technology)
    area = ClusterAreaModel(config, technology)
    power_w = energy.cluster_power_accel_w(point, utilisation)
    gflops = energy.throughput_gflops(point, utilisation)
    return SoaEntry(
        category="Our work",
        design=f"PULP + RedMulE ({label})",
        technology_nm=technology.node_nm,
        area_mm2=round(area.total(), 3),
        frequency_mhz=point.frequency_mhz,
        voltage_v=point.voltage_v,
        power_mw=power_w * 1e3,
        performance_gops=gflops,
        efficiency_gops_w=gflops / power_w,
        mac_units=config.n_fma,
        precision="FP16",
    )


def our_entries(config: Optional[RedMulEConfig] = None,
                farm: Optional[SimulationFarm] = None) -> List[SoaEntry]:
    """Compute the three "Our work" rows of Table I from the models.

    All three rows share the sustained-utilisation GEMM, so the simulation
    farm serves two of the three estimates from its timing cache.
    """
    config = config or RedMulEConfig.reference()
    farm = farm_for_config(config, farm)
    return [
        _our_entry(config, TECH_22NM, OP_22NM_EFFICIENCY, "22nm, 0.65V", farm),
        _our_entry(config, TECH_22NM, OP_22NM_PERFORMANCE, "22nm, 0.80V", farm),
        _our_entry(config, TECH_65NM, OP_65NM_NOMINAL, "65nm, 1.2V", farm),
    ]
