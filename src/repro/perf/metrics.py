"""Performance metrics shared by the experiments and benchmarks.

Beyond simple unit conversions (MAC/cycle to GFLOPS, speedups), this module
times whole multi-GEMM workloads on both sides of the comparison: the
accelerator (through the validated analytical performance model, optionally
adding the per-job offload cost) and the 8-core software baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.redmule.config import RedMulEConfig
from repro.redmule.perf_model import RedMulEPerfModel
from repro.sw.baseline import SoftwareBaseline
from repro.workloads.gemm import GemmShape


def gmacs(macs_per_cycle: float, frequency_hz: float) -> float:
    """Convert a MAC/cycle throughput into GMAC/s at a clock frequency."""
    return macs_per_cycle * frequency_hz / 1e9


def gflops(macs_per_cycle: float, frequency_hz: float) -> float:
    """Convert a MAC/cycle throughput into GFLOPS (2 ops per MAC)."""
    return 2.0 * gmacs(macs_per_cycle, frequency_hz)


def speedup(baseline_cycles: float, accelerated_cycles: float) -> float:
    """Baseline cycles divided by accelerated cycles."""
    if accelerated_cycles <= 0:
        raise ValueError("accelerated cycle count must be positive")
    return baseline_cycles / accelerated_cycles


def fraction_of_ideal(macs_per_cycle: float, config: RedMulEConfig) -> float:
    """Achieved throughput relative to the array's peak (Fig. 4a metric)."""
    return macs_per_cycle / config.ideal_macs_per_cycle


@dataclass
class WorkloadTiming:
    """Cycle accounting of a multi-GEMM workload on one execution target."""

    target: str
    #: Total cycles over all GEMMs.
    cycles: float
    #: Total useful MACs over all GEMMs.
    macs: int
    #: Per-GEMM cycles, keyed by the GEMM's name.
    per_gemm: Dict[str, float]

    @property
    def macs_per_cycle(self) -> float:
        """Aggregate throughput of the workload."""
        if self.cycles == 0:
            return 0.0
        return self.macs / self.cycles

    def runtime_s(self, frequency_hz: float) -> float:
        """Wall-clock runtime at a clock frequency."""
        return self.cycles / frequency_hz


def time_workload_hw(
    shapes: Iterable[GemmShape],
    config: Optional[RedMulEConfig] = None,
    offload_cycles_per_job: float = 0.0,
) -> WorkloadTiming:
    """Time a workload on RedMulE using the analytical performance model.

    :meth:`repro.farm.SimulationFarm.time_workload` is the batch-level,
    cached front door that produces identical numbers; this direct path is
    kept as the model-only reference implementation.
    """
    config = config or RedMulEConfig.reference()
    model = RedMulEPerfModel(config)
    per_gemm: Dict[str, float] = {}
    total_cycles = 0.0
    total_macs = 0
    for shape in shapes:
        estimate = model.estimate_gemm(shape.m, shape.n, shape.k)
        cycles = estimate.cycles + offload_cycles_per_job
        per_gemm[shape.name] = cycles
        total_cycles += cycles
        total_macs += shape.macs
    return WorkloadTiming(target="redmule", cycles=total_cycles, macs=total_macs,
                          per_gemm=per_gemm)


def time_workload_sw(
    shapes: Iterable[GemmShape],
    baseline: Optional[SoftwareBaseline] = None,
) -> WorkloadTiming:
    """Time a workload on the 8-core software baseline."""
    baseline = baseline or SoftwareBaseline()
    per_gemm: Dict[str, float] = {}
    total_cycles = 0.0
    total_macs = 0
    for shape in shapes:
        result = baseline.run_gemm(shape.m, shape.n, shape.k)
        per_gemm[shape.name] = result.cycles
        total_cycles += result.cycles
        total_macs += shape.macs
    return WorkloadTiming(target="software", cycles=total_cycles, macs=total_macs,
                          per_gemm=per_gemm)
