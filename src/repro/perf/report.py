"""Plain-text table rendering for experiment output.

The benchmarks print the rows/series the paper reports; a tiny dependency-free
table renderer keeps that output readable both on the terminal and inside
EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def write_out(text: str = "") -> None:
    """The library's single sanctioned console sink.

    ``src/repro`` is lint-gated against stray ``print`` calls (ruff
    ``T201``); report-style output -- experiment tables, runner status
    lines, validator verdicts -- flows through here instead so there is
    exactly one place to redirect or silence it.
    """
    sys.stdout.write(text + "\n")


class TextTable:
    """A simple left-aligned text table with a header row."""

    def __init__(self, headers: Sequence[str], float_format: str = "{:.3g}") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def _format(self, cell: Cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row (must match the header width)."""
        row = [self._format(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(row)

    def add_rows(self, rows: Iterable[Iterable[Cell]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    @property
    def n_rows(self) -> int:
        """Number of data rows."""
        return len(self._rows)

    def render(self) -> str:
        """Render the table as a multi-line string."""
        widths = [len(header) for header in self.headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        out = [line(self.headers), line(["-" * width for width in widths])]
        out.extend(line(row) for row in self._rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
