"""Workload models.

The paper evaluates RedMulE on generic square matrix multiplications
(Figs. 3c, 3d, 4a) and on the TinyMLPerf anomaly-detection AutoEncoder
trained on-device (Figs. 4c, 4d).  This package describes those workloads as
sequences of GEMM shapes plus enough functional machinery to run them
end-to-end on the simulated cluster:

* :mod:`repro.workloads.gemm` -- GEMM shape descriptors, random operand
  generation and sweep helpers;
* :mod:`repro.workloads.training` -- decomposition of MLP forward/backward
  passes into the GEMMs the accelerator executes;
* :mod:`repro.workloads.autoencoder` -- the MLPerf-Tiny deep auto-encoder
  topology and a functional FP16 implementation of its training step.
"""

from repro.workloads.gemm import GemmShape, GemmWorkload, square_sweep
from repro.workloads.training import (
    GemmRole,
    TrainingGemm,
    backward_gemms,
    forward_gemms,
    training_step_gemms,
)
from repro.workloads.autoencoder import (
    AUTOENCODER_LAYER_SIZES,
    AutoEncoder,
    autoencoder_training_gemms,
    autoencoder_workload,
)

__all__ = [
    "AUTOENCODER_LAYER_SIZES",
    "AutoEncoder",
    "GemmRole",
    "GemmShape",
    "GemmWorkload",
    "TrainingGemm",
    "autoencoder_training_gemms",
    "autoencoder_workload",
    "backward_gemms",
    "forward_gemms",
    "square_sweep",
    "training_step_gemms",
]
