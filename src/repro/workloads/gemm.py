"""GEMM workload descriptors and generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.fp.vector import random_fp16_matrix

#: Valid transpose annotations of a GEMM (subsets of "xw"): which logical
#: operands were derived by transposing a stored tensor.  Shared by
#: :meth:`GemmShape.describe` and :class:`repro.graph.ir.GemmNode`.
VALID_TRANSPOSES = ("", "x", "w", "xw")


@dataclass(frozen=True)
class GemmShape:
    """Shape of one matrix multiplication ``Z[m,k] = X[m,n] . W[n,k]``.

    The field names follow the accelerator's register map
    (:class:`repro.redmule.job.MatmulJob`), **not** the BLAS convention:

    * ``m`` -- rows of X and Z;
    * ``n`` -- the *inner* (reduction) dimension: columns of X, rows of W
      (what BLAS would call K);
    * ``k`` -- columns of W and Z (what BLAS would call N).
    """

    m: int
    n: int
    k: int
    name: str = "gemm"

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"{self.name}: GEMM dimensions must be positive")

    @property
    def macs(self) -> int:
        """Useful multiply-accumulates."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def operand_bytes(self) -> int:
        """FP16 bytes of X, W and Z together."""
        return 2 * (self.m * self.n + self.n * self.k + self.m * self.k)

    def random_operands(self, scale: float = 0.25,
                        seed: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Generate random binary16 operands for this shape."""
        rng = np.random.default_rng(seed)
        x = random_fp16_matrix(self.m, self.n, scale=scale, rng=rng)
        w = random_fp16_matrix(self.n, self.k, scale=scale, rng=rng)
        return x, w

    def describe(self, transpose: str = "") -> str:
        """One-line summary.

        ``transpose`` annotates which logical operands were derived by
        transposing a stored tensor (``""``, ``"x"``, ``"w"`` or ``"xw"``,
        see :class:`repro.graph.ir.GemmNode`); when given, the summary is
        rendered as the full equation with the stored operand shapes, which
        is what the graph lowering diagnostics print.
        """
        if transpose not in VALID_TRANSPOSES:
            raise ValueError(
                f"transpose must be one of {VALID_TRANSPOSES}, "
                f"got {transpose!r}"
            )
        if not transpose:
            return (f"{self.name}: M={self.m} N={self.n} K={self.k} "
                    f"({self.macs} MACs)")
        x = (f"X^T[{self.n}x{self.m}]" if "x" in transpose
             else f"X[{self.m}x{self.n}]")
        w = (f"W^T[{self.k}x{self.n}]" if "w" in transpose
             else f"W[{self.n}x{self.k}]")
        return (f"{self.name}: Z[{self.m}x{self.k}] = {x} . {w} "
                f"({self.macs} MACs)")


class GemmWorkload:
    """An ordered collection of GEMMs executed back to back."""

    def __init__(self, name: str, shapes: Iterable[GemmShape]) -> None:
        self.name = name
        self.shapes: List[GemmShape] = list(shapes)
        if not self.shapes:
            raise ValueError("a workload needs at least one GEMM")

    @property
    def total_macs(self) -> int:
        """Sum of the MACs of every GEMM."""
        return sum(shape.macs for shape in self.shapes)

    @property
    def total_flops(self) -> int:
        """Sum of the FLOPs of every GEMM."""
        return 2 * self.total_macs

    @property
    def operand_bytes(self) -> int:
        """Total operand footprint if every GEMM keeps its own buffers."""
        return sum(shape.operand_bytes for shape in self.shapes)

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self):
        return iter(self.shapes)

    def describe(self) -> str:
        """Multi-line summary of the workload."""
        lines = [f"workload {self.name}: {len(self.shapes)} GEMMs, "
                 f"{self.total_macs} MACs"]
        lines.extend(f"  {shape.describe()}" for shape in self.shapes)
        return "\n".join(lines)


def square_sweep(sizes: Iterable[int]) -> List[GemmShape]:
    """Square GEMMs (M = N = K) used by the Fig. 3c / 3d / 4a sweeps."""
    return [GemmShape(size, size, size, name=f"square-{size}") for size in sizes]
