"""GEMM workload descriptors and generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.fp.vector import random_fp16_matrix


@dataclass(frozen=True)
class GemmShape:
    """Shape of one matrix multiplication ``Z[M,K] = X[M,N] . W[N,K]``."""

    m: int
    n: int
    k: int
    name: str = "gemm"

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"{self.name}: GEMM dimensions must be positive")

    @property
    def macs(self) -> int:
        """Useful multiply-accumulates."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def operand_bytes(self) -> int:
        """FP16 bytes of X, W and Z together."""
        return 2 * (self.m * self.n + self.n * self.k + self.m * self.k)

    def random_operands(self, scale: float = 0.25,
                        seed: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Generate random binary16 operands for this shape."""
        rng = np.random.default_rng(seed)
        x = random_fp16_matrix(self.m, self.n, scale=scale, rng=rng)
        w = random_fp16_matrix(self.n, self.k, scale=scale, rng=rng)
        return x, w

    def describe(self) -> str:
        """One-line summary."""
        return f"{self.name}: M={self.m} N={self.n} K={self.k} ({self.macs} MACs)"


class GemmWorkload:
    """An ordered collection of GEMMs executed back to back."""

    def __init__(self, name: str, shapes: Iterable[GemmShape]) -> None:
        self.name = name
        self.shapes: List[GemmShape] = list(shapes)
        if not self.shapes:
            raise ValueError("a workload needs at least one GEMM")

    @property
    def total_macs(self) -> int:
        """Sum of the MACs of every GEMM."""
        return sum(shape.macs for shape in self.shapes)

    @property
    def total_flops(self) -> int:
        """Sum of the FLOPs of every GEMM."""
        return 2 * self.total_macs

    @property
    def operand_bytes(self) -> int:
        """Total operand footprint if every GEMM keeps its own buffers."""
        return sum(shape.operand_bytes for shape in self.shapes)

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self):
        return iter(self.shapes)

    def describe(self) -> str:
        """Multi-line summary of the workload."""
        lines = [f"workload {self.name}: {len(self.shapes)} GEMMs, "
                 f"{self.total_macs} MACs"]
        lines.extend(f"  {shape.describe()}" for shape in self.shapes)
        return "\n".join(lines)


def square_sweep(sizes: Iterable[int]) -> List[GemmShape]:
    """Square GEMMs (M = N = K) used by the Fig. 3c / 3d / 4a sweeps."""
    return [GemmShape(size, size, size, name=f"square-{size}") for size in sizes]
