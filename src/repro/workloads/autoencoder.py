"""TinyMLPerf anomaly-detection AutoEncoder.

The use case of Section III-B is the MLPerf-Tiny "Deep AutoEncoder" used for
machine anomaly detection: a fully-connected auto-encoder over 640-dimensional
spectrogram feature vectors with four 128-unit hidden layers on each side of
an 8-unit bottleneck.  The paper fine-tunes it on device (forward + backward)
with batch sizes 1 and 16.

This module provides the topology, a functional FP16 implementation of the
forward and backward pass (computing with the same FP16 FMA semantics as the
accelerator), and the training-step GEMM decomposition consumed by the
Fig. 4c / 4d experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fp.vector import quantize_fp16, random_fp16_matrix
from repro.redmule.functional import matmul_hw_order_fast
from repro.workloads.gemm import GemmWorkload
from repro.workloads.training import TrainingGemm, training_step_gemms

#: MLPerf-Tiny anomaly-detection auto-encoder layer sizes
#: (input, 4 x 128 hidden, 8-unit bottleneck, 4 x 128 hidden, output).
AUTOENCODER_LAYER_SIZES: Tuple[int, ...] = (
    640, 128, 128, 128, 128, 8, 128, 128, 128, 128, 640
)


def autoencoder_training_gemms(batch: int) -> List[TrainingGemm]:
    """Training-step GEMMs of the auto-encoder for a given batch size."""
    return training_step_gemms(AUTOENCODER_LAYER_SIZES, batch)


def autoencoder_workload(batch: int) -> GemmWorkload:
    """The same GEMMs wrapped as a plain workload.

    Thin wrapper over the graph IR: the auto-encoder graph is lowered and
    its GEMM stream re-exposed as a flat workload, byte-identical to the
    historical hand-written list (same shape names, same deterministic
    order).
    """
    # Lazy import: repro.graph.zoo reads AUTOENCODER_LAYER_SIZES from this
    # module, so a module-level import would be circular.
    # lint: ignore[ARCH001] legacy veneer delegates up to its graph builder
    from repro.graph.zoo import autoencoder_training_graph

    return autoencoder_training_graph(batch).lower().gemm_workload()


@dataclass
class AutoEncoder:
    """Functional FP16 auto-encoder (dense layers + ReLU).

    Weights are stored as binary16-representable float32 arrays; every matrix
    product is evaluated with the hardware's FP16 accumulation semantics so
    the numerical behaviour matches what RedMulE (or the software kernel,
    which uses the same FMA) would produce on the real system.
    """

    layer_sizes: Sequence[int] = AUTOENCODER_LAYER_SIZES
    seed: Optional[int] = 0
    weight_scale: float = 0.05
    weights: List[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2:
            raise ValueError("the auto-encoder needs at least two layer sizes")
        if not self.weights:
            rng = np.random.default_rng(self.seed)
            self.weights = [
                random_fp16_matrix(n_out, n_in, scale=self.weight_scale, rng=rng)
                for n_in, n_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:])
            ]

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        """Number of dense layers."""
        return len(self.layer_sizes) - 1

    @property
    def n_parameters(self) -> int:
        """Number of weight parameters."""
        return sum(w.size for w in self.weights)

    def footprint_bytes(self, batch: int, include_weights: bool = True) -> int:
        """FP16 bytes of activations (+ optionally weights) for one step."""
        activations = sum(self.layer_sizes) * batch * 2
        gradients = activations
        weights = 2 * self.n_parameters if include_weights else 0
        return activations + gradients + weights

    # -- functional forward / backward ------------------------------------
    def forward(self, batch_input: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass.

        ``batch_input`` has shape ``(input_size, batch)``.  Returns the
        reconstruction and the list of post-activation values per layer
        (needed by the backward pass).
        """
        activation = quantize_fp16(batch_input)
        if activation.shape[0] != self.layer_sizes[0]:
            raise ValueError(
                f"input has {activation.shape[0]} features, expected "
                f"{self.layer_sizes[0]}"
            )
        activations = [activation]
        for layer, weight in enumerate(self.weights):
            pre = matmul_hw_order_fast(weight, activation)
            if layer < self.n_layers - 1:
                activation = quantize_fp16(np.maximum(pre, 0.0))
            else:
                activation = pre  # linear output layer
            activations.append(activation)
        return activations[-1], activations

    def backward(self, activations: List[np.ndarray],
                 target: np.ndarray) -> List[np.ndarray]:
        """Backward pass of the mean-squared-error reconstruction loss.

        Returns the list of weight gradients (one per layer, same shapes as
        :attr:`weights`).  Matrix products follow the FP16 hardware
        semantics; element-wise steps are quantised to FP16 after each
        operation.
        """
        target = quantize_fp16(target)
        output = activations[-1]
        batch = output.shape[1]
        # dL/dY for the MSE loss (scaled by 2/batch, quantised like the
        # on-device implementation would).
        delta = quantize_fp16((output - target) * (2.0 / batch))
        gradients: List[Optional[np.ndarray]] = [None] * self.n_layers
        for layer in reversed(range(self.n_layers)):
            input_activation = activations[layer]
            gradients[layer] = matmul_hw_order_fast(delta, input_activation.T)
            if layer > 0:
                propagated = matmul_hw_order_fast(self.weights[layer].T, delta)
                relu_mask = (activations[layer] > 0).astype(np.float32)
                delta = quantize_fp16(propagated * relu_mask)
        return gradients  # type: ignore[return-value]

    def training_step(self, batch_input: np.ndarray,
                      learning_rate: float = 1e-3) -> Dict[str, float]:
        """One SGD step on a batch (auto-encoder target = input).

        Returns a small metrics dictionary (reconstruction loss before the
        update).  Weights are updated in place, quantised back to FP16.
        """
        output, activations = self.forward(batch_input)
        loss = float(np.mean((output - quantize_fp16(batch_input)) ** 2))
        gradients = self.backward(activations, batch_input)
        for layer, gradient in enumerate(gradients):
            updated = self.weights[layer] - learning_rate * gradient
            self.weights[layer] = quantize_fp16(updated)
        return {"loss": loss}

    # -- GEMM decomposition --------------------------------------------------
    def training_gemms(self, batch: int) -> List[TrainingGemm]:
        """The GEMMs one training step issues to the accelerator."""
        return training_step_gemms(self.layer_sizes, batch)
