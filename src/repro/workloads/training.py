"""Decomposition of MLP training steps into GEMMs.

On-device training of a fully-connected network is dominated by three GEMMs
per layer and per step (Section III-B of the paper):

* **forward**:          ``Y[out, B]  = W[out, in]  . A[in, B]``
* **weight gradient**:  ``dW[out, in] = dY[out, B] . A^T[B, in]``
* **input gradient**:   ``dA[in, B]  = W^T[in, out] . dY[out, B]``

where ``B`` is the batch size.  The mapping onto RedMulE's ``Z = X . W``
follows the paper's observation: in the forward (and input-gradient) GEMMs the
accelerator's K dimension equals the batch size, so at ``B = 1`` the array's
16-element output rows are almost empty and the speedup over software
collapses; the weight-gradient GEMM has ``K = in_features`` and keeps the
array busy regardless of the batch.  Increasing ``B`` to 16 fills the output
rows and restores the full speedup (Fig. 4d).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.workloads.gemm import GemmShape, GemmWorkload


class GemmRole(enum.Enum):
    """Which part of the training step a GEMM implements."""

    FORWARD = "forward"
    WEIGHT_GRADIENT = "weight-gradient"
    INPUT_GRADIENT = "input-gradient"


@dataclass(frozen=True)
class TrainingGemm:
    """A GEMM annotated with its position in the training step."""

    shape: GemmShape
    role: GemmRole
    layer: int

    @property
    def is_forward(self) -> bool:
        """True for forward-pass GEMMs."""
        return self.role is GemmRole.FORWARD

    @property
    def is_backward(self) -> bool:
        """True for backward-pass GEMMs (weight or input gradient)."""
        return not self.is_forward


def _check_layers(layer_sizes: Sequence[int]) -> None:
    if len(layer_sizes) < 2:
        raise ValueError("an MLP needs at least an input and an output size")
    if any(size <= 0 for size in layer_sizes):
        raise ValueError("layer sizes must be positive")


def forward_gemms(layer_sizes: Sequence[int], batch: int) -> List[TrainingGemm]:
    """Forward-pass GEMMs of an MLP described by its layer sizes."""
    _check_layers(layer_sizes)
    if batch <= 0:
        raise ValueError("batch size must be positive")
    gemms = []
    for layer, (n_in, n_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
        gemms.append(
            TrainingGemm(
                shape=GemmShape(m=n_out, n=n_in, k=batch,
                                name=f"fc{layer}-fwd"),
                role=GemmRole.FORWARD,
                layer=layer,
            )
        )
    return gemms


def backward_gemms(layer_sizes: Sequence[int], batch: int,
                   include_input_gradient_for_first_layer: bool = False
                   ) -> List[TrainingGemm]:
    """Backward-pass GEMMs (weight gradients + input gradients).

    The input gradient of the very first layer is not needed for plain
    training (there is no previous layer to propagate to) and is skipped by
    default, matching what an on-device training library computes.
    """
    _check_layers(layer_sizes)
    if batch <= 0:
        raise ValueError("batch size must be positive")
    gemms = []
    n_layers = len(layer_sizes) - 1
    for layer in reversed(range(n_layers)):
        n_in, n_out = layer_sizes[layer], layer_sizes[layer + 1]
        gemms.append(
            TrainingGemm(
                shape=GemmShape(m=n_out, n=batch, k=n_in,
                                name=f"fc{layer}-dw"),
                role=GemmRole.WEIGHT_GRADIENT,
                layer=layer,
            )
        )
        if layer > 0 or include_input_gradient_for_first_layer:
            gemms.append(
                TrainingGemm(
                    shape=GemmShape(m=n_in, n=n_out, k=batch,
                                    name=f"fc{layer}-dx"),
                    role=GemmRole.INPUT_GRADIENT,
                    layer=layer,
                )
            )
    return gemms


def training_step_gemms(layer_sizes: Sequence[int], batch: int) -> List[TrainingGemm]:
    """Full training step: forward pass followed by backward pass.

    Since the graph IR landed this is a thin wrapper over
    :func:`repro.graph.zoo.mlp_training_graph`: the graph is built, sorted
    deterministically, and its GEMM nodes are flattened back into the
    annotated list -- provably the same shapes in the same order as the
    original hand-written ``forward_gemms + backward_gemms`` composition
    (pinned by the test suite), but now derived from explicit tensor
    dependencies instead of convention.
    """
    # Imported lazily: repro.graph.zoo builds on this module's sibling
    # (workloads.gemm), so a module-level import would be circular.
    # lint: ignore[ARCH001] legacy veneer delegates up to its graph builder
    from repro.graph.ir import GemmNode
    # lint: ignore[ARCH001] legacy veneer delegates up to its graph builder
    from repro.graph.zoo import TAG_LAYER, TAG_ROLE, mlp_training_graph

    graph = mlp_training_graph(layer_sizes, batch)
    return [
        TrainingGemm(shape=node.shape, role=GemmRole(node.tags[TAG_ROLE]),
                     layer=int(node.tags[TAG_LAYER]))
        for node in graph.topo_sort() if isinstance(node, GemmNode)
    ]


def as_workload(name: str, gemms: Sequence[TrainingGemm]) -> GemmWorkload:
    """Wrap annotated training GEMMs into a plain :class:`GemmWorkload`."""
    return GemmWorkload(name, [gemm.shape for gemm in gemms])
