"""Closed-form RedMulE performance model.

The cycle-accurate engine is the ground truth but is too slow (in Python) for
wide design-space sweeps and for workloads with hundreds of millions of MACs.
This model reproduces the engine's cycle count analytically by following the
same execution structure:

* the job is split into ``ceil(M/L) * ceil(K/block_k)`` tiles;
* each tile issues for ``(H-1)*(P+1) + ceil(N/H)*block_k`` cycles, then takes
  ``P+1`` extra cycles to drain the last column;
* before the first issue of a tile the streamer must load the first X block
  (one line per valid row) and the initial W lines through the single wide
  port (one access per cycle), which stalls the array;
* after the last tile the remaining Z lines trickle out.

Mid-tile memory traffic (W refills, X block refills, Z stores of the previous
tile) fits in the spare slots of the wide port and causes no stalls in the
uncontended case, matching the engine.  The model is validated against the
cycle-accurate engine in ``tests/test_redmule_perf_model.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.redmule.config import RedMulEConfig
from repro.redmule.job import MatmulJob
from repro.redmule.scheduler import TileSchedule


@dataclass(frozen=True)
class PerfEstimate:
    """Cycle-level performance estimate for one matmul job."""

    job: MatmulJob
    config: RedMulEConfig
    #: Estimated total cycles (trigger to last store).
    cycles: int
    #: Cycles an ideal array (H*L MACs every cycle, no overhead) would need.
    ideal_cycles: int
    #: Cycles lost to per-tile preload, drain and final store flush.
    overhead_cycles: int
    #: Number of tiles.
    n_tiles: int

    @property
    def total_macs(self) -> int:
        """Useful MACs of the job."""
        return self.job.total_macs

    @property
    def macs_per_cycle(self) -> float:
        """Useful MAC throughput."""
        if self.cycles == 0:
            return 0.0
        return self.total_macs / self.cycles

    @property
    def utilisation(self) -> float:
        """Fraction of the array's peak throughput actually achieved."""
        return self.macs_per_cycle / self.config.ideal_macs_per_cycle

    @property
    def fraction_of_ideal(self) -> float:
        """Ideal cycles divided by estimated cycles (the paper's Fig. 4a metric)."""
        if self.cycles == 0:
            return 0.0
        return self.ideal_cycles / self.cycles

    def runtime_s(self, frequency_hz: float) -> float:
        """Wall-clock runtime at a given clock frequency."""
        return self.cycles / frequency_hz

    def throughput_gmacs(self, frequency_hz: float) -> float:
        """Throughput in GMAC/s at a given clock frequency."""
        return self.macs_per_cycle * frequency_hz / 1e9

    def throughput_gflops(self, frequency_hz: float) -> float:
        """Throughput in GFLOPS (2 ops per MAC) at a given clock frequency."""
        return 2.0 * self.throughput_gmacs(frequency_hz)


class RedMulEPerfModel:
    """Analytical cycle model of a RedMulE instance (uncontended TCDM)."""

    def __init__(self, config: Optional[RedMulEConfig] = None) -> None:
        self.config = config if config is not None else RedMulEConfig.reference()

    # ------------------------------------------------------------------
    def _initial_w_lines(self, n_chunks: int, n: int) -> int:
        """W lines enqueued before the first issue of a tile.

        These are the lines whose first broadcast falls within the first
        ``block_k`` cycles of the tile (the streamer's prefetch horizon), and
        whose inner index lies inside the real matrix (padding rows are not
        fetched).
        """
        cfg = self.config
        count = 0
        for chunk in range(n_chunks):
            for col in range(cfg.height):
                need = col * cfg.latency + chunk * cfg.block_k
                if need > cfg.block_k * cfg.w_prefetch_lines:
                    continue
                if chunk * cfg.height + col < n:
                    count += 1
        return count

    def estimate(self, job: MatmulJob) -> PerfEstimate:
        """Estimate the cycle count of ``job`` on this configuration."""
        cfg = self.config
        schedule = TileSchedule(job, cfg)
        n_chunks = schedule.n_chunks
        issue_cycles = (cfg.height - 1) * cfg.latency + n_chunks * cfg.block_k
        w_initial = self._initial_w_lines(n_chunks, job.n)

        total = 0
        for tile in schedule:
            # Stall cycles before the first issue: the wide port serves the
            # initial W lines (higher priority), the Z pre-load lines of an
            # accumulation job, and the first X block, one access per cycle;
            # the first issue happens on the cycle the last of those lands.
            x0_lines = tile.rows if job.n > 0 else 0
            y_lines = tile.rows if job.accumulate else 0
            preload_stalls = max(w_initial + y_lines + x0_lines - 1, 0)
            total += preload_stalls + issue_cycles + cfg.latency

        # Final Z drain: the last tile's lines leave the Z queue at one line
        # per cycle (queue -> streamer -> memory) once compute has finished.
        last_tile = schedule.tile(schedule.n_tiles - 1)
        final_drain = last_tile.rows + 2
        total += final_drain

        ideal = -(-job.total_macs // cfg.ideal_macs_per_cycle)
        return PerfEstimate(
            job=job,
            config=cfg,
            cycles=total,
            ideal_cycles=ideal,
            overhead_cycles=total - ideal,
            n_tiles=schedule.n_tiles,
        )

    # -- convenience -------------------------------------------------------
    def estimate_gemm(self, m: int, n: int, k: int) -> PerfEstimate:
        """Estimate a dense GEMM of the given shape (addresses are dummies)."""
        job = MatmulJob(x_addr=0, w_addr=0, z_addr=0, m=m, n=n, k=k)
        return self.estimate(job)
