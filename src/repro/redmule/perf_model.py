"""Closed-form RedMulE performance model.

The cycle-accurate engine is the ground truth but is too slow (in Python) for
wide design-space sweeps and for workloads with hundreds of millions of MACs.
This model reproduces the engine's cycle count analytically by following the
same execution structure:

* the job is split into ``ceil(M/L) * ceil(K/elements_per_line)`` tiles
  (``elements_per_line = block_k`` for 16-bit formats and ``2 * block_k``
  for the packed FP8 formats);
* each tile issues for ``(H-1)*(P+1) + ceil(N/H)*block_k`` cycles, then takes
  ``P+1`` extra cycles to drain the last column;
* before the first issue of a tile the streamer must load the first X block
  (one line per valid row) and the initial W lines through the single wide
  port (one access per cycle), which stalls the array;
* a non-accumulating tile pays one extra boundary cycle when its first Z row
  is handed to the store path (an accumulating tile hides it behind the Y
  pre-load of the next tile);
* after the last tile the remaining Z lines trickle out at one line per
  cycle.

On the *uncontended* domain -- where the wide port has enough spare slots per
``block_k``-cycle chunk window to serve the mid-tile W and X refills (see
:meth:`RedMulEPerfModel.is_exact`) -- the estimate is **bit-exact**: it equals
the engine's measured cycle count on every shape, which the property tests in
``tests/test_dse_properties.py`` assert over randomized (M, N, K) x (H, L, P)
samples.  Outside that domain the port saturates, the engine stalls mid-tile
and the closed form becomes a lower bound; the farm's validation mode and the
DSE cross-validation pass quantify the gap.

The optional ``memory_latency`` parameter extends the model beyond the
paper's single-cycle TCDM: each tile's pre-load pays the extra access latency
once (subsequent accesses pipeline behind it).  It defaults to 0, which is
the configuration the exactness guarantee applies to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.redmule.config import RedMulEConfig
from repro.redmule.job import MatmulJob
from repro.redmule.scheduler import TileSchedule


@dataclass(frozen=True)
class PerfEstimate:
    """Cycle-level performance estimate for one matmul job."""

    job: MatmulJob
    config: RedMulEConfig
    #: Estimated total cycles (trigger to last store).
    cycles: int
    #: Cycles an ideal array (H*L MACs every cycle, no overhead) would need.
    ideal_cycles: int
    #: Cycles lost to per-tile preload, drain and final store flush.
    overhead_cycles: int
    #: Number of tiles.
    n_tiles: int

    @property
    def total_macs(self) -> int:
        """Useful MACs of the job."""
        return self.job.total_macs

    @property
    def macs_per_cycle(self) -> float:
        """Useful MAC throughput."""
        if self.cycles == 0:
            return 0.0
        return self.total_macs / self.cycles

    @property
    def utilisation(self) -> float:
        """Fraction of the array's peak throughput actually achieved."""
        return self.macs_per_cycle / self.config.ideal_macs_per_cycle

    @property
    def fraction_of_ideal(self) -> float:
        """Ideal cycles divided by estimated cycles (the paper's Fig. 4a metric)."""
        if self.cycles == 0:
            return 0.0
        return self.ideal_cycles / self.cycles

    def runtime_s(self, frequency_hz: float) -> float:
        """Wall-clock runtime at a given clock frequency."""
        return self.cycles / frequency_hz

    def throughput_gmacs(self, frequency_hz: float) -> float:
        """Throughput in GMAC/s at a given clock frequency."""
        return self.macs_per_cycle * frequency_hz / 1e9

    def throughput_gflops(self, frequency_hz: float) -> float:
        """Throughput in GFLOPS (2 ops per MAC) at a given clock frequency."""
        return 2.0 * self.throughput_gmacs(frequency_hz)


@dataclass(frozen=True)
class ProgramEstimate:
    """Analytic timing of a whole lowered workload-graph program.

    ``serial_cycles`` is the single-cluster back-to-back execution time (the
    quantity :meth:`repro.farm.SimulationFarm.time_program` measures through
    its records) and ``critical_path_cycles`` the dependency-aware makespan
    floor: no pool of clusters, however large, can finish the program faster
    than its longest chain of dependent jobs.
    """

    graph_name: str
    config: RedMulEConfig
    #: Number of accelerator jobs in the lowered stream.
    n_jobs: int
    #: Useful MACs over the whole program.
    total_macs: int
    #: Single-cluster serial cycles (sum over jobs + offload cost).
    serial_cycles: float
    #: Longest dependent-job chain (infinite-cluster makespan floor).
    critical_path_cycles: float
    #: Per-node cycle totals, keyed by lowered-node name.
    node_cycles: Dict[str, float]

    @property
    def parallelism(self) -> float:
        """Average exploitable parallelism (serial / critical path)."""
        if self.critical_path_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.critical_path_cycles

    @property
    def macs_per_cycle(self) -> float:
        """Serial-execution throughput of the program."""
        if self.serial_cycles <= 0:
            return 0.0
        return self.total_macs / self.serial_cycles

    @property
    def utilisation(self) -> float:
        """Serial throughput relative to the array's peak."""
        return self.macs_per_cycle / self.config.ideal_macs_per_cycle

    def runtime_s(self, frequency_hz: float) -> float:
        """Serial wall-clock runtime at a given clock frequency."""
        return self.serial_cycles / frequency_hz

    def throughput_gflops(self, frequency_hz: float) -> float:
        """Serial throughput in GFLOPS at a given clock frequency."""
        return 2.0 * self.macs_per_cycle * frequency_hz / 1e9


class RedMulEPerfModel:
    """Analytical cycle model of a RedMulE instance (uncontended TCDM).

    ``memory_latency`` models a TCDM whose first access of every tile
    pre-load takes that many extra cycles (DSE memory-hierarchy axis); the
    default 0 reproduces the engine's single-cycle memory bit-exactly on the
    :meth:`is_exact` domain.
    """

    def __init__(self, config: Optional[RedMulEConfig] = None,
                 memory_latency: int = 0) -> None:
        if memory_latency < 0:
            raise ValueError("memory_latency must be >= 0")
        self.config = config if config is not None else RedMulEConfig.reference()
        self.memory_latency = memory_latency

    # ------------------------------------------------------------------
    def _initial_w_lines(self, n_chunks: int, n: int) -> int:
        """W lines enqueued before the first issue of a tile.

        These are the lines whose first broadcast falls within the first
        ``block_k`` cycles of the tile (the streamer's prefetch horizon), and
        whose inner index lies inside the real matrix (padding rows are not
        fetched).
        """
        cfg = self.config
        count = 0
        for chunk in range(n_chunks):
            for col in range(cfg.height):
                need = col * cfg.latency + chunk * cfg.block_k
                if need > cfg.block_k * cfg.w_prefetch_lines:
                    continue
                if chunk * cfg.height + col < n:
                    count += 1
        return count

    def is_exact(self, job: MatmulJob) -> bool:
        """True when the closed form provably equals the engine on ``job``.

        Two port-capacity conditions define the domain:

        * **mid-tile refills** -- per ``block_k``-cycle chunk window the
          port must deliver up to ``min(H, N)`` W lines plus -- whenever a
          tile needs more than one X block -- one X line per valid row;
          when that demand exceeds the ``block_k`` slots of the window the
          engine stalls mid-tile and the estimate becomes a lower bound;
        * **Z-backlog hiding** -- the Z lines a tile queues at its end drain
          through the *next* tile's spare port slots (stores have lowest
          priority).  A tile whose duration minus its own access count is
          smaller than the previous tile's row count cannot absorb that
          backlog, the leftover lines lengthen the final drain, and the
          estimate undercounts (a corner first caught by the
          multi-precision property tests: tiny tiles after full-height
          ones).

        ``P = 0`` (single-cycle FMAs) is excluded: the engine's X prefetch
        outruns its buffer there, so no ground truth exists to match.
        """
        cfg = self.config
        if cfg.pipeline_regs < 1:
            return False
        schedule = TileSchedule(job, cfg)
        rows = min(job.m, cfg.length)
        w_demand = min(cfg.height, job.n)
        x_demand = rows if schedule.n_blocks > 1 else 0
        if w_demand + x_demand > cfg.block_k:
            return False

        # Z-backlog condition: every non-first tile needs enough spare
        # slots (duration minus every access it performs itself) to drain
        # the previous tile's queued rows before its own compute ends.
        n_chunks = schedule.n_chunks
        issue_cycles = (cfg.height - 1) * cfg.latency + n_chunks * cfg.block_k
        w_initial = self._initial_w_lines(n_chunks, job.n)
        boundary = 0 if job.accumulate else 1
        w_total = sum(
            1
            for chunk in range(n_chunks)
            for col in range(cfg.height)
            if chunk * cfg.height + col < job.n
        )
        previous_rows = None
        for tile in schedule:
            y_lines = tile.rows if job.accumulate else 0
            accesses = w_total + tile.rows * schedule.n_blocks + y_lines
            preload = max(w_initial + y_lines + tile.rows - 1, 0)
            duration = preload + issue_cycles + cfg.latency + boundary
            if (previous_rows is not None
                    and duration - accesses < previous_rows):
                return False
            previous_rows = tile.rows
        return True

    def estimate(self, job: MatmulJob) -> PerfEstimate:
        """Estimate the cycle count of ``job`` on this configuration."""
        cfg = self.config
        schedule = TileSchedule(job, cfg)
        n_chunks = schedule.n_chunks
        issue_cycles = (cfg.height - 1) * cfg.latency + n_chunks * cfg.block_k
        w_initial = self._initial_w_lines(n_chunks, job.n)
        # A non-accumulating tile pays one boundary cycle handing its first
        # Z row to the store path; an accumulating tile hides it behind the
        # Y pre-load (measured against the engine, see the module docstring).
        boundary = 0 if job.accumulate else 1

        total = 0
        for tile in schedule:
            # Stall cycles before the first issue: the wide port serves the
            # initial W lines (higher priority), the Z pre-load lines of an
            # accumulation job, and the first X block, one access per cycle;
            # the first issue happens on the cycle the last of those lands.
            # With a slow memory the first access additionally waits out the
            # extra latency before the pipelined stream starts.
            x0_lines = tile.rows if job.n > 0 else 0
            y_lines = tile.rows if job.accumulate else 0
            preload_stalls = max(w_initial + y_lines + x0_lines - 1, 0)
            preload_stalls += self.memory_latency
            total += preload_stalls + issue_cycles + cfg.latency + boundary

        # Final Z drain: the last tile's lines leave the Z queue at one line
        # per cycle (queue -> streamer -> memory) once compute has finished.
        last_tile = schedule.tile(schedule.n_tiles - 1)
        total += last_tile.rows

        ideal = -(-job.total_macs // cfg.ideal_macs_per_cycle)
        return PerfEstimate(
            job=job,
            config=cfg,
            cycles=total,
            ideal_cycles=ideal,
            overhead_cycles=total - ideal,
            n_tiles=schedule.n_tiles,
        )

    # -- convenience -------------------------------------------------------
    def estimate_gemm(self, m: int, n: int, k: int) -> PerfEstimate:
        """Estimate a dense GEMM of the given shape (addresses are dummies)."""
        job = MatmulJob(x_addr=0, w_addr=0, z_addr=0, m=m, n=n, k=k)
        return self.estimate(job)

    # -- whole programs ----------------------------------------------------
    def estimate_program(self, program,
                         offload_cycles_per_job: float = 0.0) -> ProgramEstimate:
        """Estimate a lowered workload-graph program analytically.

        ``program`` is a :class:`~repro.graph.lower.LoweredProgram` (duck
        typed: anything with ``graph_name``, ``nodes`` carrying ``jobs``,
        and ``job_deps()`` works).  Every job is estimated with the closed
        form; the serial total reproduces
        :meth:`repro.farm.SimulationFarm.time_program` and the critical path
        is the longest dependent chain through the flat job stream.
        """
        if offload_cycles_per_job < 0:
            raise ValueError("offload_cycles_per_job must be >= 0")
        job_costs: List[float] = []
        node_cycles: Dict[str, float] = {}
        total_macs = 0
        for node in program.nodes:
            for job in node.jobs:
                cycles = self.estimate(job).cycles + offload_cycles_per_job
                job_costs.append(cycles)
                node_cycles[node.name] = node_cycles.get(node.name, 0.0) + cycles
                total_macs += job.total_macs
        critical = critical_path_cycles(program.job_deps(), job_costs)
        return ProgramEstimate(
            graph_name=program.graph_name,
            config=self.config,
            n_jobs=len(job_costs),
            total_macs=total_macs,
            serial_cycles=float(sum(job_costs)),
            critical_path_cycles=critical,
            node_cycles=node_cycles,
        )


def critical_path_cycles(deps: List[Tuple[int, ...]],
                         costs: List[float]) -> float:
    """Longest weighted chain through a flat dependency-annotated job stream.

    ``deps[i]`` holds the prerequisite indices of job ``i`` (all smaller than
    ``i``, which the lowering pass guarantees), ``costs[i]`` its cycles.
    Public shared helper: :meth:`repro.graph.lower.LoweredProgram.
    critical_path_cycles` delegates here with its own ``job_deps()``.
    """
    if len(deps) != len(costs):
        raise ValueError(
            f"dependency annotation covers {len(deps)} jobs but "
            f"{len(costs)} costs were given"
        )
    finish: List[float] = []
    for prereqs, cost in zip(deps, costs):
        start = max((finish[p] for p in prereqs), default=0.0)
        finish.append(start + cost)
    return max(finish, default=0.0)
