"""RedMulE's internal operand buffers: X block buffer, W line buffer, Z store queue.

The streamer fills these buffers through the single 288-bit port; the datapath
consumes them.  Their geometry follows Section II-B of the paper:

* **X buffer** -- one ``block_k``-element line per row; the datapath consumes
  one element per row per ``H*(P+1)``-cycle column slot, so a full block of
  ``L`` lines covers ``block_k / H`` inner-dimension chunks.  The model keeps
  up to two blocks resident (the one being consumed and the one being
  prefetched), which is what the element-wise refill of the real buffer
  achieves.
* **W buffer** -- ``H`` shift registers of ``block_k`` elements; each column
  broadcasts one element per cycle and needs a fresh line every ``block_k``
  cycles, staggered by ``P+1`` cycles between columns.
* **Z buffer** -- collects one output line per row at the end of a tile and
  drains it to memory through the streamer's spare port slots.

Lines are stored in whatever vector representation the engine's
:class:`~repro.redmule.vector_ops.VectorOps` strategy uses; the buffers treat
them as opaque objects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.redmule.config import RedMulEConfig


class XBlockBuffer:
    """Per-row X lines, organised in ``block_k``-wide blocks of the inner dimension.

    A *block* ``b`` holds elements ``n in [b*block_k, (b+1)*block_k)`` of the
    current tile's ``L`` rows.  The buffer can hold ``capacity_blocks`` blocks
    at once (2 by default: consume + prefetch).
    """

    def __init__(self, config: RedMulEConfig, capacity_blocks: int = 2) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        self.config = config
        self.capacity_blocks = capacity_blocks
        # blocks[b] = list of per-row lines (None until loaded).
        self._blocks: Dict[int, List[Optional[object]]] = {}
        #: Number of line loads accepted.
        self.lines_loaded = 0

    def reset(self) -> None:
        """Drop all blocks (called at the start of every tile)."""
        self._blocks.clear()

    def resident_blocks(self) -> List[int]:
        """Indices of blocks currently (partially) resident."""
        return sorted(self._blocks)

    def can_accept(self, block: int) -> bool:
        """True if a line of ``block`` could be accepted without eviction."""
        if block in self._blocks:
            return True
        return len(self._blocks) < self.capacity_blocks

    def load_line(self, block: int, row: int, line: object) -> None:
        """Store the X line of ``row`` for ``block`` (one wide memory access)."""
        if not self.can_accept(block):
            raise RuntimeError(
                f"X buffer overflow: block {block} does not fit "
                f"(resident: {self.resident_blocks()})"
            )
        rows = self._blocks.setdefault(block, [None] * self.config.length)
        if rows[row] is not None:
            raise RuntimeError(f"X line (block {block}, row {row}) loaded twice")
        rows[row] = line
        self.lines_loaded += 1

    def block_ready(self, block: int) -> bool:
        """True when every row line of ``block`` has been loaded."""
        rows = self._blocks.get(block)
        return rows is not None and all(line is not None for line in rows)

    def missing_lines(self, block: int) -> List[int]:
        """Rows of ``block`` still waiting for their line."""
        rows = self._blocks.get(block)
        if rows is None:
            return list(range(self.config.length))
        return [row for row, line in enumerate(rows) if line is None]

    def lines(self, block: int) -> List[object]:
        """Return the ``L`` per-row lines of a ready block."""
        if not self.block_ready(block):
            raise RuntimeError(f"X block {block} not fully loaded")
        return list(self._blocks[block])

    def evict_before(self, block: int) -> None:
        """Drop all blocks with an index lower than ``block``."""
        for stale in [b for b in self._blocks if b < block]:
            del self._blocks[stale]


class WLineBuffer:
    """W shift registers: one ``block_k``-element line per (column, chunk).

    Lines are keyed by the chunk they serve; a column's line for chunk ``p``
    is consumed over the ``block_k`` cycles the column spends on that chunk
    and can be dropped afterwards.  ``prefetch_lines`` extra lines per column
    may be staged ahead of use.
    """

    def __init__(self, config: RedMulEConfig) -> None:
        self.config = config
        self._lines: Dict[Tuple[int, int], object] = {}
        #: Number of line loads accepted.
        self.lines_loaded = 0

    def reset(self) -> None:
        """Drop all lines (called at the start of every tile)."""
        self._lines.clear()

    def load_line(self, column: int, chunk: int, line: object) -> None:
        """Store the W line broadcast by ``column`` during ``chunk``."""
        key = (column, chunk)
        if key in self._lines:
            raise RuntimeError(f"W line {key} loaded twice")
        self._lines[key] = line
        self.lines_loaded += 1

    def has_line(self, column: int, chunk: int) -> bool:
        """True when the line for ``(column, chunk)`` is resident."""
        return (column, chunk) in self._lines

    def line(self, column: int, chunk: int) -> object:
        """Return the resident line for ``(column, chunk)``."""
        return self._lines[(column, chunk)]

    def resident_count(self, column: Optional[int] = None) -> int:
        """Number of resident lines (optionally for a single column)."""
        if column is None:
            return len(self._lines)
        return sum(1 for (col, _chunk) in self._lines if col == column)

    def evict(self, column: int, chunk: int) -> None:
        """Drop the line once its chunk has been fully issued."""
        self._lines.pop((column, chunk), None)

    def evict_chunks_before(self, column: int, chunk: int) -> None:
        """Drop every line of ``column`` serving a chunk older than ``chunk``."""
        stale = [key for key in self._lines if key[0] == column and key[1] < chunk]
        for key in stale:
            del self._lines[key]


@dataclass
class ZStoreRequest:
    """One pending Z line store."""

    addr: int
    #: Pattern line to store: a ``uint16`` array or 16-bit integer sequence.
    bits: Sequence[int]
    #: Number of leading elements of ``bits`` that are architecturally valid
    #: (edge tiles store fewer than ``block_k`` elements).
    valid_elements: int


class ZStoreBuffer:
    """Queue of computed Z lines waiting for a free port slot to be stored."""

    def __init__(self, config: RedMulEConfig) -> None:
        self.config = config
        self.depth = config.z_queue_depth
        self._queue: Deque[ZStoreRequest] = deque()
        #: Number of stores pushed.
        self.pushes = 0
        #: Number of stores drained to memory.
        self.drains = 0
        #: Peak occupancy observed.
        self.max_occupancy = 0
        #: Optional schedule recorder notified of pushes and drains
        #: (``z_pushed`` / ``z_drained``); see
        #: :class:`repro.redmule.trace.TileRecorder`.
        self.observer = None

    @property
    def occupancy(self) -> int:
        """Pending stores."""
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True when no further result line can be accepted."""
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        """True when nothing is waiting to be stored."""
        return not self._queue

    def push(self, request: ZStoreRequest) -> bool:
        """Queue a result line; returns ``False`` (caller must stall) when full."""
        if self.full:
            return False
        self._queue.append(request)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))
        if self.observer is not None:
            self.observer.z_pushed(request)
        return True

    def peek(self) -> Optional[ZStoreRequest]:
        """Oldest pending store, if any."""
        return self._queue[0] if self._queue else None

    def pop(self) -> Optional[ZStoreRequest]:
        """Remove and return the oldest pending store."""
        if not self._queue:
            return None
        self.drains += 1
        request = self._queue.popleft()
        if self.observer is not None:
            self.observer.z_drained(request)
        return request

    def snapshot(self) -> List[ZStoreRequest]:
        """The queued stores, oldest first (not removed)."""
        return list(self._queue)

    def restore(self, entries: Sequence[ZStoreRequest]) -> None:
        """Replace the queue wholesale (trace-replay boundary)."""
        self._queue.clear()
        self._queue.extend(entries)
