"""RedMulE register map and job controller.

Software programs RedMulE through a memory-mapped register file (reached via
the cluster peripheral interconnect) following the standard ``hwpe-ctrl``
protocol: acquire the job context, write the job registers, trigger, wait for
the done event.  This module defines the register map used by the model, the
translation between register contents and :class:`~repro.redmule.job.
MatmulJob` descriptors, and the controller wrapper that sequences jobs.

The register offsets mirror the layout of the PULP ``hwpe-ctrl`` IP: a small
set of mandatory control registers at the bottom of the page followed by the
job-specific registers.
"""

from __future__ import annotations

from typing import List

from repro.hwpe.controller import HwpeController, HwpeState
from repro.hwpe.regfile import HwpeRegisterFile, RegisterSpec
from repro.redmule.job import MatmulJob

#: Mandatory hwpe-ctrl registers.
REG_TRIGGER = "trigger"
REG_ACQUIRE = "acquire"
REG_FINISHED = "finished"
REG_STATUS = "status"
REG_RUNNING_JOB = "running_job"
REG_SOFT_CLEAR = "soft_clear"

#: RedMulE job registers.
REG_X_ADDR = "x_addr"
REG_W_ADDR = "w_addr"
REG_Z_ADDR = "z_addr"
REG_M_SIZE = "m_size"
REG_N_SIZE = "n_size"
REG_K_SIZE = "k_size"
REG_X_STRIDE = "x_stride"
REG_W_STRIDE = "w_stride"
REG_Z_STRIDE = "z_stride"
REG_FLAGS = "flags"

#: Bit of ``REG_FLAGS`` selecting Z accumulation (``Z += X . W``).
FLAG_ACCUMULATE = 1 << 0
#: Bit of ``REG_FLAGS`` selecting 8-bit elements (FP8; clear = 16-bit).
FLAG_ELEMENTS_8BIT = 1 << 1

#: Complete register map (name, byte offset, writability, reset value).
REDMULE_REGISTERS: List[RegisterSpec] = [
    RegisterSpec(REG_TRIGGER, 0x00, doc="write any value to start the job"),
    RegisterSpec(REG_ACQUIRE, 0x04, doc="read to acquire the job context"),
    RegisterSpec(REG_FINISHED, 0x08, writable=False, doc="jobs completed"),
    RegisterSpec(REG_STATUS, 0x0C, writable=False, doc="0 = idle, 1 = running"),
    RegisterSpec(REG_RUNNING_JOB, 0x10, writable=False, doc="id of the running job"),
    RegisterSpec(REG_SOFT_CLEAR, 0x14, doc="write to clear the accelerator state"),
    RegisterSpec(REG_X_ADDR, 0x40, doc="byte address of X in TCDM"),
    RegisterSpec(REG_W_ADDR, 0x44, doc="byte address of W in TCDM"),
    RegisterSpec(REG_Z_ADDR, 0x48, doc="byte address of Z in TCDM"),
    RegisterSpec(REG_M_SIZE, 0x4C, doc="rows of X / Z"),
    RegisterSpec(REG_N_SIZE, 0x50, doc="inner dimension"),
    RegisterSpec(REG_K_SIZE, 0x54, doc="columns of W / Z"),
    RegisterSpec(REG_X_STRIDE, 0x58, doc="row stride of X in bytes (0 = dense)"),
    RegisterSpec(REG_W_STRIDE, 0x5C, doc="row stride of W in bytes (0 = dense)"),
    RegisterSpec(REG_Z_STRIDE, 0x60, doc="row stride of Z in bytes (0 = dense)"),
    RegisterSpec(REG_FLAGS, 0x64,
                 doc="bit 0: accumulate into Z; bit 1: 8-bit elements"),
]


class RedMulEController:
    """Register file + job FSM of the accelerator.

    The controller does not execute jobs itself -- the engine does -- but it
    is the programming surface: the cluster model and the examples write the
    registers exactly like bare-metal code would, and the engine pulls the
    job descriptor out of it when triggered.
    """

    def __init__(self) -> None:
        self.regfile = HwpeRegisterFile(REDMULE_REGISTERS, name="redmule-regfile")
        self.fsm = HwpeController()

    # -- software-side protocol ---------------------------------------------
    def acquire(self) -> int:
        """Acquire the job context (returns 0 on success, -1 if busy)."""
        result = self.fsm.acquire()
        self.regfile.poke(REG_ACQUIRE, 0 if result == 0 else 0xFFFFFFFF)
        return result

    def program_job(self, job: MatmulJob) -> None:
        """Write the job descriptor into the register file."""
        self.regfile.write(REG_X_ADDR, job.x_addr)
        self.regfile.write(REG_W_ADDR, job.w_addr)
        self.regfile.write(REG_Z_ADDR, job.z_addr)
        self.regfile.write(REG_M_SIZE, job.m)
        self.regfile.write(REG_N_SIZE, job.n)
        self.regfile.write(REG_K_SIZE, job.k)
        self.regfile.write(REG_X_STRIDE, job.x_stride)
        self.regfile.write(REG_W_STRIDE, job.w_stride)
        self.regfile.write(REG_Z_STRIDE, job.z_stride)
        flags = FLAG_ACCUMULATE if job.accumulate else 0
        if job.element_bytes == 1:
            flags |= FLAG_ELEMENTS_8BIT
        self.regfile.write(REG_FLAGS, flags)

    def trigger(self) -> MatmulJob:
        """Start the programmed job and return its descriptor."""
        job = self.current_job()
        self.fsm.trigger()
        self.regfile.poke(REG_STATUS, 1)
        self.regfile.poke(REG_RUNNING_JOB, self.fsm.jobs_completed)
        return job

    def finish(self) -> None:
        """Mark the running job as done (called by the engine)."""
        self.fsm.finish()
        self.regfile.poke(REG_STATUS, 0)
        self.regfile.poke(REG_FINISHED, self.fsm.jobs_completed)

    def clear(self) -> None:
        """Acknowledge the done event and return to idle."""
        self.fsm.clear()

    def abort(self) -> None:
        """Release the job context after a failed run (no completion counted).

        Used by the engine when a simulation raises mid-job: the status
        register is cleared and the FSM returns to idle so the next
        ``acquire`` succeeds instead of reporting the accelerator busy.
        """
        self.fsm.abort()
        self.regfile.poke(REG_STATUS, 0)

    def soft_clear(self) -> None:
        """Reset the register file and the FSM (``SOFT_CLEAR`` register)."""
        self.regfile.reset()
        self.fsm.reset()

    # -- inspection -------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a job is running."""
        return self.fsm.busy

    @property
    def state(self) -> HwpeState:
        """Controller FSM state."""
        return self.fsm.state

    def current_job(self) -> MatmulJob:
        """Decode the register file into a :class:`MatmulJob`."""
        flags = self.regfile.read(REG_FLAGS)
        return MatmulJob(
            x_addr=self.regfile.read(REG_X_ADDR),
            w_addr=self.regfile.read(REG_W_ADDR),
            z_addr=self.regfile.read(REG_Z_ADDR),
            m=self.regfile.read(REG_M_SIZE),
            n=self.regfile.read(REG_N_SIZE),
            k=self.regfile.read(REG_K_SIZE),
            x_stride=self.regfile.read(REG_X_STRIDE),
            w_stride=self.regfile.read(REG_W_STRIDE),
            z_stride=self.regfile.read(REG_Z_STRIDE),
            accumulate=bool(flags & FLAG_ACCUMULATE),
            element_bytes=1 if flags & FLAG_ELEMENTS_8BIT else 2,
        )

    def offload_register_writes(self) -> int:
        """Number of register writes a core performs to offload one job.

        Used by the cluster model to charge the software offload cost
        (10 job registers + trigger).
        """
        return 11
