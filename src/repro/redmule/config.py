"""RedMulE architectural configuration.

The accelerator is parametric in three numbers (Section II-B of the paper):

* ``H`` -- FMA units per row (columns of the array),
* ``L`` -- rows of FMA units,
* ``P`` -- internal pipeline registers per FMA.

Each row computes ``H * (P + 1)`` *slots* of a Z row before storing them,
which fixes the width of the X/W/Z lines the streamer moves per access and
therefore the number of 32-bit TCDM ports.  The paper's reference instance is
``H=4, L=8, P=3``: 32 FMAs, 16-slot lines, 9 memory ports (256 bits of
payload + one extra 32-bit lane for non-word-aligned accesses).

Since the multi-precision generalisation a slot is 16 bits of datapath and
line payload but no longer necessarily one element: ``format`` selects the
element encoding (:mod:`repro.fp.formats`), and the 8-bit FP8 formats pack
``elements_per_slot = 2`` operands into every slot -- each FMA lane then
performs one packed two-way operation per cycle (FPnew-style vectorial
mode), lines carry twice the elements, tiles cover twice the output columns
and peak throughput doubles at identical port width and array geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.fp.formats import BinaryFormat, get_format

#: Bits per datapath slot (one IEEE binary16 element in the paper's baseline).
ELEMENT_BITS = 16
#: Bytes per datapath slot.
ELEMENT_BYTES = ELEMENT_BITS // 8
#: Width of one TCDM port in bits.
PORT_BITS = 32


@dataclass(frozen=True)
class RedMulEConfig:
    """Static (design-time) parameters of a RedMulE instance.

    Attributes
    ----------
    height:
        ``H``, number of FMA columns per row.
    length:
        ``L``, number of FMA rows.
    pipeline_regs:
        ``P``, internal pipeline registers per FMA (latency is ``P + 1``).
        Must be >= 1: the cycle-accurate engine's X prefetch outruns its
        buffer with single-cycle FMAs (the engine-hang domain mapped by the
        design-space work), so ``P = 0`` instances are rejected at
        construction time instead of spinning the simulation.
    w_prefetch_lines:
        How many W lines per column the streamer may prefetch ahead of use
        (1 models the single staging slot in front of each shift register).
    z_queue_depth:
        Maximum pending Z line stores buffered before the datapath stalls.
        Jobs additionally require a depth of at least their live-row count
        (checked at submission time, see ``RedMulE.run_job``).
    format:
        Element format name (``"fp16"``, ``"bf16"``, ``"fp8-e4m3"``,
        ``"fp8-e5m2"``).  Participates in configuration identity: the
        element width changes line geometry, tile geometry and cycle
        counts, unlike ``arithmetic`` below.
    arithmetic:
        Default arithmetic backend of engines built from this
        configuration (``"exact"``, ``"exact-simd"`` or ``"fast"``).  A pure
        simulation concern: it never affects timing, geometry, configuration
        equality or the farm's shape-keyed cache identity.
    """

    height: int = 4
    length: int = 8
    pipeline_regs: int = 3
    w_prefetch_lines: int = 1
    z_queue_depth: int = 8
    format: str = "fp16"
    arithmetic: str = field(default="fast", compare=False)

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ValueError("H (height) must be >= 1")
        if self.length < 1:
            raise ValueError("L (length) must be >= 1")
        if self.pipeline_regs < 1:
            raise ValueError(
                "P (pipeline_regs) must be >= 1: single-cycle FMAs put the "
                "engine in its mapped hang domain (X prefetch outruns the "
                "block buffer), so P=0 instances are rejected up front"
            )
        if self.w_prefetch_lines < 1:
            raise ValueError("w_prefetch_lines must be >= 1")
        if self.z_queue_depth < 1:
            raise ValueError("z_queue_depth must be >= 1")
        get_format(self.format)  # raises on unknown names
        # Imported here to keep the config module free of simulator imports.
        from repro.redmule.vector_ops import validate_backend_name

        validate_backend_name(self.arithmetic)

    # -- element format -----------------------------------------------------
    @cached_property
    def binary_format(self) -> BinaryFormat:
        """The element format descriptor."""
        return get_format(self.format)

    @cached_property
    def element_bits(self) -> int:
        """Bits per matrix element (16 for FP16/BF16, 8 for FP8)."""
        return self.binary_format.storage_bits

    @cached_property
    def element_bytes(self) -> int:
        """Bytes per matrix element."""
        return self.binary_format.storage_bytes

    @cached_property
    def elements_per_slot(self) -> int:
        """Elements packed into one 16-bit datapath slot (1 or 2)."""
        return ELEMENT_BITS // self.element_bits

    @cached_property
    def elements_per_line(self) -> int:
        """Elements in one streamer line (``block_k * elements_per_slot``).

        This is the number of Z columns a tile covers and the number of
        operands one wide access moves: the FP8 formats carry twice the
        elements of FP16 in the same line payload.
        """
        return self.block_k * self.elements_per_slot

    # -- derived geometry ---------------------------------------------------
    @cached_property
    def latency(self) -> int:
        """FMA latency in cycles (``P + 1``)."""
        return self.pipeline_regs + 1

    @cached_property
    def n_fma(self) -> int:
        """Total number of FMA units (``H * L``)."""
        return self.height * self.length

    @cached_property
    def block_k(self) -> int:
        """Z slots computed per row before store-back (``H * (P + 1)``).

        This is also the number of 16-bit slots in one X, W or Z line moved
        by the streamer (each slot holding ``elements_per_slot`` elements).
        """
        return self.height * self.latency

    @cached_property
    def line_bits(self) -> int:
        """Payload bits of one streamer line (``block_k * 16``)."""
        return self.block_k * ELEMENT_BITS

    @cached_property
    def line_bytes(self) -> int:
        """Payload bytes of one streamer line."""
        return self.block_k * ELEMENT_BYTES

    @cached_property
    def n_mem_ports(self) -> int:
        """Number of 32-bit TCDM ports of the streamer.

        One port per 32 bits of line payload plus one extra port that absorbs
        non-word-aligned accesses, as described in Section II-B (9 ports for
        the reference design).  Format-independent: narrow formats pack more
        elements into the same ports instead of shrinking the interface.
        """
        payload_ports = -(-self.line_bits // PORT_BITS)
        return payload_ports + 1

    @cached_property
    def ideal_macs_per_cycle(self) -> int:
        """Peak MAC throughput: ``elements_per_slot`` MACs per FMA per cycle."""
        return self.n_fma * self.elements_per_slot

    # -- buffer sizing (elements) --------------------------------------------
    @property
    def x_buffer_elements(self) -> int:
        """Capacity of the X buffer: one line of elements per row."""
        return self.length * self.elements_per_line

    @property
    def w_buffer_elements(self) -> int:
        """Capacity of the W buffer: one line-deep shift register per column."""
        return self.height * self.elements_per_line

    @property
    def z_buffer_elements(self) -> int:
        """Capacity of the Z buffer: one output line per row."""
        return self.length * self.elements_per_line

    @property
    def total_buffer_bits(self) -> int:
        """Total storage bits across the X, W and Z buffers."""
        return self.element_bits * (
            self.x_buffer_elements + self.w_buffer_elements + self.z_buffer_elements
        )

    # -- helpers ---------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable summary of the instance."""
        fmt = "" if self.format == "fp16" else f" {self.format}"
        return (
            f"RedMulE H={self.height} L={self.length} P={self.pipeline_regs}"
            f"{fmt} ({self.n_fma} FMAs, {self.elements_per_line}-element lines, "
            f"{self.n_mem_ports}x32-bit ports)"
        )

    @classmethod
    def reference(cls) -> "RedMulEConfig":
        """The paper's reference instance: H=4, L=8, P=3 (32 FMAs, 9 ports)."""
        return cls(height=4, length=8, pipeline_regs=3)
