"""RedMulE architectural configuration.

The accelerator is parametric in three numbers (Section II-B of the paper):

* ``H`` -- FMA units per row (columns of the array),
* ``L`` -- rows of FMA units,
* ``P`` -- internal pipeline registers per FMA.

Each row computes ``H * (P + 1)`` elements of a Z row before storing them,
which fixes the width of the X/W/Z lines the streamer moves per access and
therefore the number of 32-bit TCDM ports.  The paper's reference instance is
``H=4, L=8, P=3``: 32 FMAs, 16-element lines, 9 memory ports (256 bits of
payload + one extra 32-bit lane for non-word-aligned accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

#: Bits per matrix element (IEEE binary16).
ELEMENT_BITS = 16
#: Bytes per matrix element.
ELEMENT_BYTES = ELEMENT_BITS // 8
#: Width of one TCDM port in bits.
PORT_BITS = 32


@dataclass(frozen=True)
class RedMulEConfig:
    """Static (design-time) parameters of a RedMulE instance.

    Attributes
    ----------
    height:
        ``H``, number of FMA columns per row.
    length:
        ``L``, number of FMA rows.
    pipeline_regs:
        ``P``, internal pipeline registers per FMA (latency is ``P + 1``).
    w_prefetch_lines:
        How many W lines per column the streamer may prefetch ahead of use
        (1 models the single staging slot in front of each shift register).
    z_queue_depth:
        Maximum pending Z line stores buffered before the datapath stalls.
    arithmetic:
        Default FP16 arithmetic backend of engines built from this
        configuration (``"exact"``, ``"exact-simd"`` or ``"fast"``).  A pure
        simulation concern: it never affects timing, geometry, configuration
        equality or the farm's shape-keyed cache identity.
    """

    height: int = 4
    length: int = 8
    pipeline_regs: int = 3
    w_prefetch_lines: int = 1
    z_queue_depth: int = 8
    arithmetic: str = field(default="fast", compare=False)

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ValueError("H (height) must be >= 1")
        if self.length < 1:
            raise ValueError("L (length) must be >= 1")
        if self.pipeline_regs < 0:
            raise ValueError("P (pipeline_regs) must be >= 0")
        if self.w_prefetch_lines < 1:
            raise ValueError("w_prefetch_lines must be >= 1")
        if self.z_queue_depth < 1:
            raise ValueError("z_queue_depth must be >= 1")
        # Imported here to keep the config module free of simulator imports.
        from repro.redmule.vector_ops import validate_backend_name

        validate_backend_name(self.arithmetic)

    # -- derived geometry ---------------------------------------------------
    @cached_property
    def latency(self) -> int:
        """FMA latency in cycles (``P + 1``)."""
        return self.pipeline_regs + 1

    @cached_property
    def n_fma(self) -> int:
        """Total number of FMA units (``H * L``)."""
        return self.height * self.length

    @cached_property
    def block_k(self) -> int:
        """Z elements computed per row before store-back (``H * (P + 1)``).

        This is also the number of FP16 elements in one X, W or Z line moved
        by the streamer.
        """
        return self.height * self.latency

    @cached_property
    def line_bits(self) -> int:
        """Payload bits of one streamer line (``block_k * 16``)."""
        return self.block_k * ELEMENT_BITS

    @cached_property
    def line_bytes(self) -> int:
        """Payload bytes of one streamer line."""
        return self.block_k * ELEMENT_BYTES

    @cached_property
    def n_mem_ports(self) -> int:
        """Number of 32-bit TCDM ports of the streamer.

        One port per 32 bits of line payload plus one extra port that absorbs
        non-word-aligned accesses, as described in Section II-B (9 ports for
        the reference design).
        """
        payload_ports = -(-self.line_bits // PORT_BITS)
        return payload_ports + 1

    @cached_property
    def ideal_macs_per_cycle(self) -> int:
        """Peak MAC throughput: one MAC per FMA per cycle."""
        return self.n_fma

    # -- buffer sizing (elements) --------------------------------------------
    @property
    def x_buffer_elements(self) -> int:
        """Capacity of the X buffer: one line of ``block_k`` elements per row."""
        return self.length * self.block_k

    @property
    def w_buffer_elements(self) -> int:
        """Capacity of the W buffer: one ``block_k`` shift register per column."""
        return self.height * self.block_k

    @property
    def z_buffer_elements(self) -> int:
        """Capacity of the Z buffer: one output line per row."""
        return self.length * self.block_k

    @property
    def total_buffer_bits(self) -> int:
        """Total storage bits across the X, W and Z buffers."""
        return ELEMENT_BITS * (
            self.x_buffer_elements + self.w_buffer_elements + self.z_buffer_elements
        )

    # -- helpers ---------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable summary of the instance."""
        return (
            f"RedMulE H={self.height} L={self.length} P={self.pipeline_regs} "
            f"({self.n_fma} FMAs, {self.block_k}-element lines, "
            f"{self.n_mem_ports}x32-bit ports)"
        )

    @classmethod
    def reference(cls) -> "RedMulEConfig":
        """The paper's reference instance: H=4, L=8, P=3 (32 FMAs, 9 ports)."""
        return cls(height=4, length=8, pipeline_regs=3)
