"""Row-vector arithmetic strategies for the datapath simulator.

All ``L`` rows of the RedMulE array execute the same schedule on different
data, so the cycle-accurate engine processes one *row vector* (one value per
row) per column per cycle.  Two interchangeable strategies implement the FP16
arithmetic on those vectors:

* :class:`ExactVectorOps` -- vectors are lists of 16-bit patterns and every
  FMA is evaluated with the bit-exact scalar implementation
  (:func:`repro.fp.fma.fma16`).  Slow, used for functional verification.
* :class:`FastVectorOps` -- vectors are numpy ``float64`` arrays holding
  exactly representable binary16 values; the FMA is evaluated in ``float64``
  and rounded once to binary16 per step.  Fast, used for performance sweeps.

The engine is written against the small interface below, so switching
strategy changes only the cost of simulating a cycle, never the structure of
the machine.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.fp.fma import fma16
from repro.fp.float16 import POS_ZERO_BITS, bits_to_float, float_to_bits


class VectorOps(abc.ABC):
    """Arithmetic strategy over per-row vectors of FP16 values."""

    #: Strategy name used in traces and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def from_bits(self, bits: Sequence[int]):
        """Build a vector from a sequence of 16-bit patterns."""

    @abc.abstractmethod
    def to_bits(self, vector) -> List[int]:
        """Convert a vector back to a list of 16-bit patterns."""

    @abc.abstractmethod
    def zeros(self, n: int):
        """Return a vector of ``n`` positive zeros."""

    @abc.abstractmethod
    def fma(self, x_vector, w_bits: int, acc_vector):
        """Return ``x * w + acc`` element-wise, rounded once to binary16."""

    @abc.abstractmethod
    def gather(self, lines: Sequence, offset: int):
        """Build a vector from element ``offset`` of each per-row line."""


class ExactVectorOps(VectorOps):
    """Bit-exact strategy: vectors are lists of 16-bit patterns."""

    name = "exact"

    def from_bits(self, bits: Sequence[int]) -> List[int]:
        return list(bits)

    def to_bits(self, vector: Sequence[int]) -> List[int]:
        return list(vector)

    def zeros(self, n: int) -> List[int]:
        return [POS_ZERO_BITS] * n

    def fma(self, x_vector: Sequence[int], w_bits: int,
            acc_vector: Sequence[int]) -> List[int]:
        return [fma16(x, w_bits, acc) for x, acc in zip(x_vector, acc_vector)]

    def gather(self, lines: Sequence[Sequence[int]], offset: int) -> List[int]:
        return [line[offset] for line in lines]


class FastVectorOps(VectorOps):
    """Numpy strategy: vectors are float64 arrays of exact binary16 values."""

    name = "fast"

    def from_bits(self, bits: Sequence[int]) -> np.ndarray:
        u16 = np.asarray(bits, dtype=np.uint16)
        return u16.view(np.float16).astype(np.float64)

    def to_bits(self, vector: np.ndarray) -> List[int]:
        u16 = np.asarray(vector, dtype=np.float64).astype(np.float16).view(np.uint16)
        return [int(v) for v in u16]

    def zeros(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def fma(self, x_vector: np.ndarray, w_bits: int,
            acc_vector: np.ndarray) -> np.ndarray:
        w_value = bits_to_float(w_bits)
        raw = x_vector * w_value + acc_vector
        return raw.astype(np.float16).astype(np.float64)

    def gather(self, lines: Sequence[np.ndarray], offset: int) -> np.ndarray:
        return np.array([line[offset] for line in lines], dtype=np.float64)


def make_vector_ops(exact: bool) -> VectorOps:
    """Return the requested strategy (:class:`ExactVectorOps` if ``exact``)."""
    return ExactVectorOps() if exact else FastVectorOps()
