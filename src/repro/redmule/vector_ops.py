"""Row-vector arithmetic strategies for the datapath simulator.

All ``L`` rows of the RedMulE array execute the same schedule on different
data, so the cycle-accurate engine processes one *row vector* (one value per
row per lane) per column per cycle.  Interchangeable strategies implement
the arithmetic on those vectors:

* :class:`ExactVectorOps` -- vectors are lists of bit patterns and every
  FMA is evaluated with the bit-exact scalar implementation
  (:func:`repro.fp.formats.fma_bits`).  Slow; the ground-truth oracle.
* :class:`ExactSimdVectorOps` -- bit-identical to :class:`ExactVectorOps`,
  array-backed: FMAs are evaluated with the vectorised bit-exact kernels of
  :mod:`repro.fp.simd` / :mod:`repro.fp.simd_formats`.  Issued FMAs are
  recorded as a lazy dependency chain and evaluated in batches (all of a
  tile's independent accumulator chains side by side) when results are
  observed, so the per-element kernel cost is amortised over whole rows.
* :class:`FastVectorOps` -- vectors are numpy ``float64`` arrays holding
  exactly representable format values; the FMA is evaluated in ``float64``
  and rounded once per step.  Fast, used for performance sweeps.
* :class:`TraceVectorOps` -- :class:`ExactSimdVectorOps` plus trace
  compilation: the engine records each tile signature's cycle schedule once
  and replays later tiles as batched data-plane computations
  (:mod:`repro.redmule.trace`), bit-identical to the oracle.

Every strategy is constructed for one element format
(:class:`~repro.fp.formats.BinaryFormat`, default binary16).  For the 8-bit
formats each 16-bit datapath slot packs ``lanes = 2`` elements along the
output (K) dimension, so a slot-level FMA broadcasts one X element against a
``lanes``-wide W slot and a ``lanes``-wide accumulator slice -- the
FPnew-style packed vectorial mode of the FP8 follow-on.  Vectors over the
array are stored flat in ``[row][lane]`` order (length ``L * lanes``); X
operand vectors stay one element per row (length ``L``).

The engine is written against the small interface below, so switching
strategy changes only the cost of simulating a cycle, never the structure of
the machine.  Besides per-row vectors the interface also covers *lines* (the
``elements_per_line``-element rows the streamer moves to and from the TCDM),
so a strategy can keep whole lines in its preferred representation instead
of converting to per-element Python lists at every layer boundary.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.fp.formats import FP16, BinaryFormat, fma_bits, get_format
from repro.fp.simd import fma16_guarded_f64
from repro.fp.simd_formats import (
    bits_to_f64_many,
    f64_to_bits_many,
    fma_guarded_f64_fmt,
)

#: Datapath slot width in bits (one FPnew FMA register).
_SLOT_BITS = 16


class VectorOps(abc.ABC):
    """Arithmetic strategy over per-row vectors of format values."""

    #: Strategy name used in traces, reports and the backend registry.
    name: str = "abstract"
    #: True when the strategy reproduces the hardware bit patterns exactly.
    bit_exact: bool = False
    #: True when engines built on this strategy should record and replay
    #: compiled cycle schedules (see :mod:`repro.redmule.trace`).
    schedule_compiled: bool = False

    def __init__(self, fmt: Union[str, BinaryFormat, None] = None) -> None:
        self.fmt = get_format(fmt) if fmt is not None else FP16
        #: Elements packed per 16-bit datapath slot (1 or 2).
        self.lanes = _SLOT_BITS // self.fmt.storage_bits

    @abc.abstractmethod
    def from_bits(self, bits: Sequence[int]):
        """Build a vector from a sequence (or pattern array) of patterns."""

    @abc.abstractmethod
    def to_bits(self, vector) -> List[int]:
        """Convert a vector back to a list of bit patterns."""

    @abc.abstractmethod
    def zeros(self, n: int):
        """Return a vector of ``n`` positive zeros."""

    @abc.abstractmethod
    def fma(self, x_vector, w_slot, acc_vector):
        """Return ``x (*) w_slot + acc`` element-wise, rounded once per element.

        ``x_vector`` holds one element per row; ``w_slot`` is a slot operand
        (a scalar for single-lane formats, ``lanes`` values for packed ones,
        in the representation :meth:`w_slot` returns); ``acc_vector`` is a
        flat ``[row][lane]`` vector.  The result has the accumulator's shape.
        """

    @abc.abstractmethod
    def gather(self, lines: Sequence, offset: int):
        """Build an X vector from element ``offset`` of each per-row line."""

    # -- slot-level interface ------------------------------------------------
    def gather_slot(self, lines: Sequence, slot: int):
        """Build a flat ``[row][lane]`` vector from slot ``slot`` of each line.

        Used to seed the accumulators from pre-loaded Z lines; for
        single-lane formats this is exactly :meth:`gather`.
        """
        if self.lanes == 1:
            return self.gather(lines, slot)
        raise NotImplementedError  # packed formats: strategy-specific

    def w_slot(self, line, k: int):
        """Slot operand broadcast by a column at cycle ``k`` of its chunk."""
        if self.lanes == 1:
            return line[k]
        return line[k * self.lanes : (k + 1) * self.lanes]

    # -- line-level interface (streamer <-> buffers boundary) ---------------
    def from_line(self, line) -> object:
        """Convert a raw pattern line into the strategy's W-line storage.

        Indexing the result via :meth:`w_slot` must yield an operand
        :meth:`fma` accepts.  The default keeps Python ints (what the scalar
        exact path consumes).
        """
        return [int(v) for v in line]

    def zero_line(self, n: int) -> object:
        """A line of ``n`` positive zeros in the strategy's W-line storage."""
        return self.from_line([0] * n)

    def to_lines(self, columns: Sequence) -> Sequence:
        """Transpose per-slot result vectors into per-row pattern lines.

        ``columns[s]`` is the flat ``[row][lane]`` result vector of slot
        ``s``; ``lines[row]`` collects ``columns[s][row * lanes + j]`` at
        element index ``s * lanes + j``.  The returned rows are
        indexable/sliceable pattern sequences ready for a line store.  This
        is the point where lazily accumulated results are materialised, so
        strategies should force *all* columns in one batch.
        """
        lanes = self.lanes
        column_bits = [self.to_bits(c) for c in columns]
        n_rows = len(column_bits[0]) // lanes if column_bits else 0
        lines = []
        for row in range(n_rows):
            line: List[int] = []
            for bits in column_bits:
                line.extend(bits[row * lanes : (row + 1) * lanes])
            lines.append(line)
        return lines


class ExactVectorOps(VectorOps):
    """Bit-exact scalar strategy: vectors are lists of bit patterns."""

    name = "exact"
    bit_exact = True

    def from_bits(self, bits: Sequence[int]) -> List[int]:
        return [int(v) for v in bits]

    def to_bits(self, vector: Sequence[int]) -> List[int]:
        return [int(v) for v in vector]

    def zeros(self, n: int) -> List[int]:
        return [0] * n

    def fma(self, x_vector: Sequence[int], w_slot,
            acc_vector: Sequence[int]) -> List[int]:
        fmt = self.fmt
        if self.lanes == 1:
            w = int(w_slot)
            return [fma_bits(int(x), w, int(acc), fmt)
                    for x, acc in zip(x_vector, acc_vector)]
        lanes = self.lanes
        w = [int(v) for v in w_slot]
        out: List[int] = []
        for row, x in enumerate(x_vector):
            x = int(x)
            base = row * lanes
            out.extend(
                fma_bits(x, w[j], int(acc_vector[base + j]), fmt)
                for j in range(lanes)
            )
        return out

    def gather(self, lines: Sequence[Sequence[int]], offset: int) -> List[int]:
        return [int(line[offset]) for line in lines]

    def gather_slot(self, lines: Sequence[Sequence[int]], slot: int) -> List[int]:
        if self.lanes == 1:
            return self.gather(lines, slot)
        base = slot * self.lanes
        return [int(line[base + j]) for line in lines
                for j in range(self.lanes)]


class _PendingFma:
    """One recorded (not yet evaluated) vector FMA of the lazy exact strategy."""

    __slots__ = ("x", "w", "acc", "values")

    def __init__(self, x: np.ndarray, w, acc) -> None:
        self.x = x
        self.w = w
        self.acc = acc
        self.values = None


class FastVectorOps(VectorOps):
    """Numpy strategy: vectors are float64 arrays of exact format values."""

    name = "fast"
    bit_exact = False

    def __init__(self, fmt: Union[str, BinaryFormat, None] = None) -> None:
        super().__init__(fmt)
        self._is_fp16 = self.fmt.name == "fp16"

    # -- representation bridges ---------------------------------------------
    def _decode(self, bits) -> np.ndarray:
        if self._is_fp16:
            u16 = np.asarray(bits, dtype=np.uint16)
            return u16.view(np.float16).astype(np.float64)
        return bits_to_f64_many(bits, self.fmt)

    def _encode(self, values: np.ndarray) -> np.ndarray:
        if self._is_fp16:
            return np.asarray(values, dtype=np.float64).astype(
                np.float16).view(np.uint16)
        return f64_to_bits_many(np.asarray(values, dtype=np.float64), self.fmt)

    def _round(self, values: np.ndarray) -> np.ndarray:
        if self._is_fp16:
            return values.astype(np.float16).astype(np.float64)
        return bits_to_f64_many(self._encode(values), self.fmt)

    def from_bits(self, bits) -> np.ndarray:
        return self._decode(bits)

    def to_bits(self, vector: np.ndarray) -> List[int]:
        return [int(v) for v in self._encode(np.asarray(vector,
                                                        dtype=np.float64))]

    def zeros(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def fma(self, x_vector: np.ndarray, w_slot,
            acc_vector: np.ndarray) -> np.ndarray:
        if self.lanes == 1:
            if isinstance(w_slot, (int, np.integer)):
                w_value = self.fmt.bits_to_float(int(w_slot))
            else:
                w_value = float(w_slot)
            raw = x_vector * w_value + acc_vector
        else:
            w = np.asarray(w_slot, dtype=np.float64)
            raw = (np.asarray(x_vector)[:, None] * w[None, :]).ravel() + acc_vector
        return self._round(raw)

    def gather(self, lines: Sequence[np.ndarray], offset: int) -> np.ndarray:
        return np.array([line[offset] for line in lines], dtype=np.float64)

    def gather_slot(self, lines: Sequence[np.ndarray], slot: int) -> np.ndarray:
        if self.lanes == 1:
            return self.gather(lines, slot)
        base = slot * self.lanes
        return np.concatenate(
            [np.asarray(line[base : base + self.lanes], dtype=np.float64)
             for line in lines]
        )

    # -- line-level interface ----------------------------------------------
    def from_line(self, line) -> np.ndarray:
        # W lines are decoded to float64 values once per line, so the per
        # issue hot path no longer decodes the broadcast operands from bits.
        return self._decode(line)

    def zero_line(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def to_lines(self, columns: Sequence) -> np.ndarray:
        stacked = np.stack([np.asarray(c, dtype=np.float64) for c in columns])
        n_slots, flat = stacked.shape
        lanes = self.lanes
        if lanes > 1:
            # (slot, row, lane) -> (row, slot * lanes + lane)
            stacked = stacked.reshape(n_slots, flat // lanes, lanes)
            stacked = stacked.transpose(1, 0, 2).reshape(flat // lanes,
                                                         n_slots * lanes)
        else:
            stacked = stacked.T
        return self._encode(stacked)


class ExactSimdVectorOps(FastVectorOps):
    """Bit-exact array strategy built on the vectorised SIMD kernels.

    Shares :class:`FastVectorOps`' representation -- ``float64`` arrays
    holding exact format values (patterns only appear at the memory
    boundaries) -- but replaces its arithmetic: :meth:`fma` records a lazy
    node instead of evaluating immediately, and when a result is observed
    (via :meth:`to_bits` / :meth:`to_lines` / :meth:`gather`) every chain the
    requested values depend on is evaluated level by level with one guarded
    kernel call per dependency depth, stacking all same-depth nodes (e.g.
    the ``block_k`` independent accumulator chains of a tile) into a single
    kernel batch.  The guarded kernel (:func:`repro.fp.simd.
    fma16_guarded_f64` for binary16, :func:`repro.fp.simd_formats.
    fma_guarded_f64_fmt` for every other format) routes any lane where
    float64 evaluation could double-round through the integer kernels, so
    deferral and the float hot path never change the produced bits -- only
    how many elements each kernel invocation covers.
    """

    name = "exact-simd"
    bit_exact = True

    def to_bits(self, vector) -> List[int]:
        return super().to_bits(self._materialise(vector))

    def fma(self, x_vector, w_slot, acc_vector) -> _PendingFma:
        if isinstance(x_vector, _PendingFma):
            x_vector = self._materialise(x_vector)
        if self.lanes == 1:
            if isinstance(w_slot, (int, np.integer)):
                w_slot = self.fmt.bits_to_float(int(w_slot))
            x = x_vector
            w = w_slot
        else:
            x = np.repeat(np.asarray(x_vector, dtype=np.float64), self.lanes)
            w = np.tile(np.asarray(w_slot, dtype=np.float64),
                        len(x_vector))
        return _PendingFma(x, w, acc_vector)

    def gather(self, lines: Sequence, offset: int) -> np.ndarray:
        return super().gather([self._materialise(line) for line in lines],
                              offset)

    def gather_slot(self, lines: Sequence, slot: int) -> np.ndarray:
        return super().gather_slot(
            [self._materialise(line) for line in lines], slot
        )

    def to_lines(self, columns: Sequence) -> np.ndarray:
        return super().to_lines(self._force(list(columns)))

    def _guarded(self, x: np.ndarray, w: np.ndarray,
                 acc: np.ndarray) -> np.ndarray:
        if self._is_fp16:
            return fma16_guarded_f64(x, w, acc).astype(np.float64)
        return fma_guarded_f64_fmt(x, w, acc, self.fmt)

    # -- lazy-chain evaluation ---------------------------------------------
    def _materialise(self, vector) -> np.ndarray:
        if isinstance(vector, _PendingFma):
            if vector.values is None:
                self._force([vector])
            return vector.values
        return np.asarray(vector, dtype=np.float64)

    def _force(self, vectors: Sequence) -> List[np.ndarray]:
        """Evaluate every pending chain the requested vectors depend on.

        Nodes are bucketed by their distance from a concrete leaf and each
        bucket is evaluated with a single batched kernel call; dependency
        order is preserved because a node is always one level above its
        accumulator input.
        """
        levels: List[List[_PendingFma]] = []
        depth_of: Dict[int, int] = {}
        for root in vectors:
            chain: List[_PendingFma] = []
            node = root
            while (
                isinstance(node, _PendingFma)
                and node.values is None
                and id(node) not in depth_of
            ):
                chain.append(node)
                node = node.acc
            base = 0
            if isinstance(node, _PendingFma) and node.values is None:
                base = depth_of[id(node)] + 1
            for depth, pending in enumerate(reversed(chain), start=base):
                depth_of[id(pending)] = depth
                if depth == len(levels):
                    levels.append([])
                levels[depth].append(pending)

        scalar_w = self.lanes == 1
        for level in levels:
            x = np.stack([node.x for node in level])
            if scalar_w:
                w = np.array([node.w for node in level],
                             dtype=np.float64)[:, None]
            else:
                w = np.stack([node.w for node in level])
            acc = np.stack([
                node.acc.values if isinstance(node.acc, _PendingFma) else node.acc
                for node in level
            ])
            values = self._guarded(x, w, acc)
            for row, node in enumerate(level):
                node.values = values[row]
        return [self._materialise(v) for v in vectors]


class TraceVectorOps(ExactSimdVectorOps):
    """Bit-exact strategy that additionally opts the engine into trace
    compilation: tiles whose cycle schedule was recorded before are replayed
    at numpy speed (:mod:`repro.redmule.trace`), unseen tiles fall back to
    the event-stepped loop using the inherited lazy SIMD arithmetic -- so a
    cold run is never slower than ``exact-simd`` and a warm run skips the
    control plane entirely.
    """

    name = "trace"
    bit_exact = True
    schedule_compiled = True


#: Registry of vector-ops strategies keyed by backend name.
VECTOR_OPS_REGISTRY: Dict[str, Callable[..., VectorOps]] = {
    ExactVectorOps.name: ExactVectorOps,
    ExactSimdVectorOps.name: ExactSimdVectorOps,
    FastVectorOps.name: FastVectorOps,
    TraceVectorOps.name: TraceVectorOps,
}

#: Valid backend names, in oracle-first order (CLI choices, docs).
VECTOR_OPS_BACKENDS = tuple(VECTOR_OPS_REGISTRY)


def backend_schedule_compiled(backend: str) -> bool:
    """True when ``backend`` engines record/replay compiled cycle schedules."""
    return VECTOR_OPS_REGISTRY[validate_backend_name(backend)].schedule_compiled


def validate_backend_name(backend: str) -> str:
    """Check a backend name against the registry; returns it unchanged."""
    if backend not in VECTOR_OPS_REGISTRY:
        raise ValueError(
            f"unknown vector-ops backend {backend!r}; "
            f"available: {', '.join(VECTOR_OPS_BACKENDS)}"
        )
    return backend


def make_vector_ops(
    backend: Union[str, bool] = "exact",
    fmt: Union[str, BinaryFormat, None] = None,
) -> VectorOps:
    """Build the strategy registered under ``backend`` for element format ``fmt``.

    Booleans are accepted for backward compatibility: ``True`` selects the
    scalar bit-exact oracle, ``False`` the float64 fast path.  ``fmt``
    defaults to binary16.
    """
    if isinstance(backend, bool):
        backend = "exact" if backend else "fast"
    return VECTOR_OPS_REGISTRY[validate_backend_name(backend)](fmt)

