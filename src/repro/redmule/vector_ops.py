"""Row-vector arithmetic strategies for the datapath simulator.

All ``L`` rows of the RedMulE array execute the same schedule on different
data, so the cycle-accurate engine processes one *row vector* (one value per
row) per column per cycle.  Three interchangeable strategies implement the
FP16 arithmetic on those vectors:

* :class:`ExactVectorOps` -- vectors are lists of 16-bit patterns and every
  FMA is evaluated with the bit-exact scalar implementation
  (:func:`repro.fp.fma.fma16`).  Slow; the ground-truth oracle.
* :class:`ExactSimdVectorOps` -- bit-identical to :class:`ExactVectorOps`,
  array-backed: FMAs are evaluated with the vectorised bit-exact kernels of
  :mod:`repro.fp.simd`.  Issued FMAs are recorded as a lazy dependency chain
  and evaluated in batches (all of a tile's independent accumulator chains
  side by side) when results are observed, so the per-element kernel cost is
  amortised over whole rows.
* :class:`FastVectorOps` -- vectors are numpy ``float64`` arrays holding
  exactly representable binary16 values; the FMA is evaluated in ``float64``
  and rounded once to binary16 per step.  Fast, used for performance sweeps.

The engine is written against the small interface below, so switching
strategy changes only the cost of simulating a cycle, never the structure of
the machine.  Besides per-row vectors the interface also covers *lines* (the
``block_k``-element rows the streamer moves to and from the TCDM), so a
strategy can keep whole lines in its preferred representation instead of
converting to per-element Python lists at every layer boundary.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.fp.fma import fma16
from repro.fp.float16 import POS_ZERO_BITS, bits_to_float
from repro.fp.simd import fma16_guarded_f64


class VectorOps(abc.ABC):
    """Arithmetic strategy over per-row vectors of FP16 values."""

    #: Strategy name used in traces, reports and the backend registry.
    name: str = "abstract"
    #: True when the strategy reproduces the hardware bit patterns exactly.
    bit_exact: bool = False

    @abc.abstractmethod
    def from_bits(self, bits: Sequence[int]):
        """Build a vector from a sequence (or ``uint16`` array) of patterns."""

    @abc.abstractmethod
    def to_bits(self, vector) -> List[int]:
        """Convert a vector back to a list of 16-bit patterns."""

    @abc.abstractmethod
    def zeros(self, n: int):
        """Return a vector of ``n`` positive zeros."""

    @abc.abstractmethod
    def fma(self, x_vector, w_bits, acc_vector):
        """Return ``x * w + acc`` element-wise, rounded once to binary16."""

    @abc.abstractmethod
    def gather(self, lines: Sequence, offset: int):
        """Build a vector from element ``offset`` of each per-row line."""

    # -- line-level interface (streamer <-> buffers boundary) ---------------
    def from_line(self, line) -> object:
        """Convert a raw ``uint16`` line into the strategy's W-line storage.

        Indexing the result at ``k`` must yield a scalar :meth:`fma` accepts
        as ``w_bits``.  The default keeps Python ints (what the scalar exact
        path consumes).
        """
        return [int(v) for v in line]

    def zero_line(self, n: int) -> object:
        """A line of ``n`` positive zeros in the strategy's W-line storage."""
        return self.from_line([POS_ZERO_BITS] * n)

    def to_lines(self, columns: Sequence) -> Sequence:
        """Transpose per-column result vectors into per-row pattern lines.

        ``columns[k][row]`` becomes ``lines[row][k]``; the returned rows are
        indexable/sliceable pattern sequences ready for a line store.  This is
        the point where lazily accumulated results are materialised, so
        strategies should force *all* columns in one batch.
        """
        return [list(row) for row in zip(*(self.to_bits(c) for c in columns))]


class ExactVectorOps(VectorOps):
    """Bit-exact scalar strategy: vectors are lists of 16-bit patterns."""

    name = "exact"
    bit_exact = True

    def from_bits(self, bits: Sequence[int]) -> List[int]:
        return [int(v) for v in bits]

    def to_bits(self, vector: Sequence[int]) -> List[int]:
        return [int(v) for v in vector]

    def zeros(self, n: int) -> List[int]:
        return [POS_ZERO_BITS] * n

    def fma(self, x_vector: Sequence[int], w_bits: int,
            acc_vector: Sequence[int]) -> List[int]:
        return [fma16(x, w_bits, acc) for x, acc in zip(x_vector, acc_vector)]

    def gather(self, lines: Sequence[Sequence[int]], offset: int) -> List[int]:
        return [line[offset] for line in lines]


class _PendingFma:
    """One recorded (not yet evaluated) vector FMA of the lazy exact strategy."""

    __slots__ = ("x", "w", "acc", "values")

    def __init__(self, x: np.ndarray, w, acc) -> None:
        self.x = x
        self.w = w
        self.acc = acc
        self.values = None


class FastVectorOps(VectorOps):
    """Numpy strategy: vectors are float64 arrays of exact binary16 values."""

    name = "fast"
    bit_exact = False

    def from_bits(self, bits) -> np.ndarray:
        u16 = np.asarray(bits, dtype=np.uint16)
        return u16.view(np.float16).astype(np.float64)

    def to_bits(self, vector: np.ndarray) -> List[int]:
        u16 = np.asarray(vector, dtype=np.float64).astype(np.float16).view(np.uint16)
        return [int(v) for v in u16]

    def zeros(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def fma(self, x_vector: np.ndarray, w_bits,
            acc_vector: np.ndarray) -> np.ndarray:
        if isinstance(w_bits, (int, np.integer)):
            w_value = bits_to_float(int(w_bits))
        else:
            w_value = float(w_bits)
        raw = x_vector * w_value + acc_vector
        return raw.astype(np.float16).astype(np.float64)

    def gather(self, lines: Sequence[np.ndarray], offset: int) -> np.ndarray:
        return np.array([line[offset] for line in lines], dtype=np.float64)

    # -- line-level interface ----------------------------------------------
    def from_line(self, line) -> np.ndarray:
        # W lines are decoded to float64 values once per line, so the per
        # issue hot path no longer decodes the broadcast scalar from bits.
        return np.asarray(line, dtype=np.uint16).view(np.float16).astype(np.float64)

    def zero_line(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def to_lines(self, columns: Sequence) -> np.ndarray:
        stacked = np.stack([np.asarray(c, dtype=np.float64) for c in columns], axis=1)
        return stacked.astype(np.float16).view(np.uint16)


class ExactSimdVectorOps(FastVectorOps):
    """Bit-exact array strategy built on the vectorised SIMD kernels.

    Shares :class:`FastVectorOps`' representation -- ``float64`` arrays
    holding exact binary16 values (patterns only appear at the memory
    boundaries) -- but replaces its arithmetic: :meth:`fma` records a lazy
    node instead of evaluating immediately, and when a result is observed
    (via :meth:`to_bits` / :meth:`to_lines` / :meth:`gather`) every chain the
    requested values depend on is evaluated level by level with one
    :func:`repro.fp.simd.fma16_guarded_f64` call per dependency depth,
    stacking all same-depth nodes (e.g. the ``block_k`` independent
    accumulator chains of a tile) into a single kernel batch.  The guarded
    kernel routes any lane where float64 evaluation could double-round
    through the integer kernel :func:`repro.fp.simd.fma16_many`, so deferral
    and the float hot path never change the produced bits -- only how many
    elements each kernel invocation covers.
    """

    name = "exact-simd"
    bit_exact = True

    def to_bits(self, vector) -> List[int]:
        return super().to_bits(self._materialise(vector))

    def fma(self, x_vector, w_bits, acc_vector) -> _PendingFma:
        if isinstance(x_vector, _PendingFma):
            x_vector = self._materialise(x_vector)
        if isinstance(w_bits, (int, np.integer)):
            w_bits = bits_to_float(int(w_bits))
        return _PendingFma(x_vector, w_bits, acc_vector)

    def gather(self, lines: Sequence, offset: int) -> np.ndarray:
        return super().gather([self._materialise(line) for line in lines],
                              offset)

    def to_lines(self, columns: Sequence) -> np.ndarray:
        return super().to_lines(self._force(list(columns)))

    # -- lazy-chain evaluation ---------------------------------------------
    def _materialise(self, vector) -> np.ndarray:
        if isinstance(vector, _PendingFma):
            if vector.values is None:
                self._force([vector])
            return vector.values
        return np.asarray(vector, dtype=np.float64)

    def _force(self, vectors: Sequence) -> List[np.ndarray]:
        """Evaluate every pending chain the requested vectors depend on.

        Nodes are bucketed by their distance from a concrete leaf and each
        bucket is evaluated with a single batched kernel call; dependency
        order is preserved because a node is always one level above its
        accumulator input.
        """
        levels: List[List[_PendingFma]] = []
        depth_of: Dict[int, int] = {}
        for root in vectors:
            chain: List[_PendingFma] = []
            node = root
            while (
                isinstance(node, _PendingFma)
                and node.values is None
                and id(node) not in depth_of
            ):
                chain.append(node)
                node = node.acc
            base = 0
            if isinstance(node, _PendingFma) and node.values is None:
                base = depth_of[id(node)] + 1
            for depth, pending in enumerate(reversed(chain), start=base):
                depth_of[id(pending)] = depth
                if depth == len(levels):
                    levels.append([])
                levels[depth].append(pending)

        for level in levels:
            x = np.stack([node.x for node in level])
            w = np.array([node.w for node in level], dtype=np.float64)[:, None]
            acc = np.stack([
                node.acc.values if isinstance(node.acc, _PendingFma) else node.acc
                for node in level
            ])
            values = fma16_guarded_f64(x, w, acc).astype(np.float64)
            for row, node in enumerate(level):
                node.values = values[row]
        return [self._materialise(v) for v in vectors]


#: Registry of vector-ops strategies keyed by backend name.
VECTOR_OPS_REGISTRY: Dict[str, Callable[[], VectorOps]] = {
    ExactVectorOps.name: ExactVectorOps,
    ExactSimdVectorOps.name: ExactSimdVectorOps,
    FastVectorOps.name: FastVectorOps,
}

#: Valid backend names, in oracle-first order (CLI choices, docs).
VECTOR_OPS_BACKENDS = tuple(VECTOR_OPS_REGISTRY)


def validate_backend_name(backend: str) -> str:
    """Check a backend name against the registry; returns it unchanged."""
    if backend not in VECTOR_OPS_REGISTRY:
        raise ValueError(
            f"unknown vector-ops backend {backend!r}; "
            f"available: {', '.join(VECTOR_OPS_BACKENDS)}"
        )
    return backend


def make_vector_ops(backend: Union[str, bool] = "exact") -> VectorOps:
    """Build the strategy registered under ``backend``.

    Booleans are accepted for backward compatibility: ``True`` selects the
    scalar bit-exact oracle, ``False`` the float64 fast path.
    """
    if isinstance(backend, bool):
        backend = "exact" if backend else "fast"
    return VECTOR_OPS_REGISTRY[validate_backend_name(backend)]()
