"""Trace compilation for the cycle-accurate engine: record once, replay fast.

For a fixed architectural configuration the per-cycle control schedule of a
tile is *data-independent*: which cycle each W/X/Y request is issued and
completed, when the datapath issues or stalls, and when Z lines are pushed
and drained depend only on the tile geometry (``job.n``, ``accumulate``,
``tile.rows``, ``tile.cols``), on the Z store backlog carried across the
tile boundary, and on the interconnect contention environment -- never on
operand values or addresses.  This module exploits that separation the same
way schedule-compilation passes in cycle-level simulators (pymtl3's
``OpenLoopCLPass``) do:

* :class:`ScheduleTrace` -- the compact numpy record of one tile's control
  schedule, captured by a :class:`TileRecorder` while the engine runs the
  ordinary event-stepped loop;
* :class:`TraceStore` -- schedule traces keyed by *(tile signature, Z
  backlog, contention environment)*; one store per architectural
  configuration (:func:`shared_trace_store`), so the full key is
  ``(config_key, tile signature, contention env)``;
* :func:`replay_dataplane` -- the batched format-parametric FMA chain that
  re-computes only the data plane of a recorded schedule, driven by the
  recorded lane-activity mask (bit-identical to the scalar oracle);
* :class:`ReplaySession` -- the hybrid executor used by
  ``RedMulE(backend="trace")``: tiles whose schedule is already recorded are
  replayed in signature-grouped batches at numpy speed, unseen tiles are
  event-stepped (and recorded), and the Z store backlog is reconstructed at
  every replay/event-step boundary so the two execution modes interleave
  without drift.

Replayed tiles reproduce the event-stepped engine exactly where it is
observable: TCDM contents, ``RedMulEResult`` cycle/stall/issue counters and
streamer statistics are bit-identical.  Low-level interconnect counters the
result does not carry (HCI grant counts, per-bank access tallies) are not
re-simulated during replay windows.

Why the key is sufficient (uncontended case): at a tile boundary the X/W/Y
queues are empty and the datapath is idle -- the only state crossing the
boundary is the backlog of computed Z lines (Z-buffer occupancy plus the
streamer's pending store queue).  Addresses never influence timing because
an uncontended wide request is always granted without advancing the branch
rotor (see :class:`repro.interco.arbiter.BranchRotator`).  Contention breaks
both properties, so a recording that observed any wide-port stall is
discarded instead of stored, and only the ``"idle"`` environment tag is
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fp.flags import ExceptionFlags
from repro.fp.formats import BinaryFormat
from repro.fp.simd import fma16_guarded_f64
from repro.fp.simd_formats import (
    bits_to_f64_many,
    f64_to_bits_many,
    fma_guarded_f64_fmt,
    fma_many_fmt,
    format_dtype,
)
from repro.redmule.buffers import ZStoreRequest
from repro.redmule.streamer import StreamRequest

#: The only contention environment a trace can be replayed under: no
#: logarithmic-branch traffic contends with the wide port, so the branch
#: rotor never advances and no interconnect state crosses tile boundaries.
CONTENTION_ENV_IDLE = "idle"

#: Stream-request kinds in the order their event codes are assigned.
STREAM_KINDS = ("w", "y", "x", "z")

#: Schedule trace key within one configuration's store:
#: ``(n, accumulate, rows, cols, zbuf_occupancy, pending_z, env)``.
TileKey = Tuple[int, bool, int, int, int, int, str]


def trace_config_key(config) -> Tuple[int, int, int, int, int, str]:
    """Architectural part of the trace key (one shared store per value).

    Mirrors :func:`repro.farm.cache.config_key`: every field that changes
    the cycle schedule participates, the arithmetic backend does not.
    """
    return (
        config.height,
        config.length,
        config.pipeline_regs,
        config.w_prefetch_lines,
        config.z_queue_depth,
        config.format,
    )


def trace_tag(config) -> str:
    """String form of :func:`trace_config_key` (JSON-object key)."""
    return ":".join(str(v) for v in trace_config_key(config))


def tile_key(
    n: int,
    accumulate: bool,
    rows: int,
    cols: int,
    zbuf_occupancy: int,
    pending_z: int,
    env: str = CONTENTION_ENV_IDLE,
) -> TileKey:
    """Key of one tile's schedule within a configuration's trace store."""
    return (n, bool(accumulate), rows, cols, zbuf_occupancy, pending_z, env)


# ---------------------------------------------------------------------------
# schedule traces
# ---------------------------------------------------------------------------

_INT_FIELDS = (
    "cycles",
    "stall_cycles",
    "active_cycles",
    "column_issues",
    "fma_issues",
    "w_loads",
    "x_loads",
    "y_loads",
    "z_stores",
    "idle_cycles",
    "z_pushes",
    "z_drains",
    "zbuf_out",
    "pending_z_out",
)

_ARRAY_FIELDS = (
    "active_mask",
    "issue_cycles",
    "issue_cols",
    "issue_chunks",
    "issue_ks",
    "issue_gated",
    "stream_cycles",
    "stream_phases",
    "stream_kinds",
    "z_event_cycles",
    "z_event_kinds",
)


@dataclass
class ScheduleTrace:
    """The recorded control schedule of one tile, as compact numpy arrays.

    Scalar fields are the deltas a replayed tile applies to the engine's
    counters; ``zbuf_out``/``pending_z_out`` describe the Z backlog left at
    the tile boundary (the entry state of the next tile's key).  The event
    arrays are the per-cycle evidence the deltas were derived from -- kept
    (and persisted) so traces can be inspected and cross-checked; replay
    itself only needs the scalars plus ``active_mask``, the per-inner-step
    lane mask distilled from the recorded ``issue_gated`` flags.
    """

    key: TileKey
    cycles: int
    stall_cycles: int
    active_cycles: int
    column_issues: int
    fma_issues: int
    w_loads: int
    x_loads: int
    y_loads: int
    z_stores: int
    idle_cycles: int
    z_pushes: int
    z_drains: int
    zbuf_out: int
    pending_z_out: int
    #: Per inner-dimension step: True where the FMA chain consumes a real
    #: operand, False where the recorded schedule gated the lane (inner
    #: padding passes the accumulator through untouched).
    active_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    issue_cycles: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    issue_cols: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int16))
    issue_chunks: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    issue_ks: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int16))
    issue_gated: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    stream_cycles: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    stream_phases: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int8))
    stream_kinds: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int8))
    z_event_cycles: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    z_event_kinds: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int8))

    @property
    def n_steps(self) -> int:
        """Inner-dimension steps of the recorded chain (gated included)."""
        return int(self.active_mask.shape[0])

    # -- persistence --------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serialisable representation (see :meth:`from_payload`)."""
        payload = {"key": list(self.key)}
        for name in _INT_FIELDS:
            payload[name] = int(getattr(self, name))
        for name in _ARRAY_FIELDS:
            payload[name] = [int(v) for v in getattr(self, name)]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ScheduleTrace":
        """Rebuild a trace from :meth:`to_payload` output."""
        key = tuple(payload["key"])
        key = tile_key(key[0], key[1], key[2], key[3], key[4], key[5], key[6])
        kwargs = {name: int(payload[name]) for name in _INT_FIELDS}
        bool_arrays = ("active_mask", "issue_gated")
        for name in _ARRAY_FIELDS:
            dtype = bool if name in bool_arrays else np.int64
            kwargs[name] = np.asarray(payload[name], dtype=dtype)
        return cls(key=key, **kwargs)


@dataclass
class TraceStoreStats:
    """Hit/miss accounting of a :class:`TraceStore`."""

    hits: int = 0
    misses: int = 0
    recordings: int = 0
    #: Recordings thrown away because contention polluted the schedule.
    discarded: int = 0


class TraceStore:
    """Schedule traces of one architectural configuration, keyed by tile."""

    def __init__(self) -> None:
        self._traces: Dict[TileKey, ScheduleTrace] = {}
        self.stats = TraceStoreStats()

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, key: TileKey) -> bool:
        return key in self._traces

    def lookup(self, key: TileKey) -> Optional[ScheduleTrace]:
        """Return the trace recorded for ``key`` (and count a hit or miss)."""
        trace = self._traces.get(key)
        if trace is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return trace

    def store(self, trace: ScheduleTrace) -> None:
        """Commit a recorded trace (later recordings of a key overwrite)."""
        self._traces[trace.key] = trace
        self.stats.recordings += 1

    def discard_recording(self) -> None:
        """Account for a recording that could not be kept (contention)."""
        self.stats.discarded += 1

    def clear(self) -> None:
        """Drop every trace (statistics are kept)."""
        self._traces.clear()

    # -- persistence --------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serialisable dump of every trace (``TimingCache`` payload)."""
        return {"traces": [t.to_payload() for t in self._traces.values()]}

    def merge_payload(self, payload: dict) -> int:
        """Merge traces from :meth:`to_payload` output; returns the count.

        Existing keys are kept (a live recording is at least as fresh as a
        persisted one); merging counts neither hits nor recordings.
        """
        merged = 0
        for entry in payload.get("traces", []):
            trace = ScheduleTrace.from_payload(entry)
            if trace.key not in self._traces:
                self._traces[trace.key] = trace
                merged += 1
        return merged


# -- process-wide shared stores ---------------------------------------------

_SHARED_STORES: Dict[Tuple[int, int, int, int, int, str], TraceStore] = {}


def shared_trace_store(config) -> TraceStore:
    """Process-wide trace store for an architectural configuration.

    Every ``RedMulE(backend="trace")`` instance of the same configuration
    shares one store (unless constructed with an explicit ``trace_store``),
    so a sweep's later jobs replay the schedules its earlier jobs recorded.
    """
    key = trace_config_key(config)
    store = _SHARED_STORES.get(key)
    if store is None:
        store = TraceStore()
        _SHARED_STORES[key] = store
    return store


def reset_shared_trace_stores() -> None:
    """Drop every shared store (test isolation / benchmark cold starts)."""
    _SHARED_STORES.clear()


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------


class TileRecorder:
    """Captures one tile's control events while the engine event-steps it.

    The engine calls :meth:`begin_cycle` once per simulated cycle; the
    streamer and Z-buffer hooks (`observer` attributes) deliver request
    issue/completion and push/drain events, and the engine reports datapath
    issues (with their ``issue_gated`` flag) directly.  Events fired before
    the first cycle (the Y pre-load enqueues of an accumulation tile) land
    at cycle ``-1``.
    """

    def __init__(self, key: TileKey) -> None:
        self.key = key
        self.cycle = -1
        self._issues: List[Tuple[int, int, int, int, bool]] = []
        self._stream_events: List[Tuple[int, int, int]] = []
        self._z_events: List[Tuple[int, int]] = []

    def begin_cycle(self) -> None:
        """Advance the tile-local cycle counter (one call per engine cycle)."""
        self.cycle += 1

    # -- engine-side hook ---------------------------------------------------
    def issue(self, col: int, chunk: int, k: int, gated: bool) -> None:
        """Record one column issue (gated lanes pass the accumulator through)."""
        self._issues.append((self.cycle, col, chunk, k, gated))

    # -- streamer observer protocol ----------------------------------------
    def stream_enqueued(self, request: StreamRequest) -> None:
        """Record a stream request entering the port queues."""
        self._stream_events.append(
            (self.cycle, 0, STREAM_KINDS.index(request.kind))
        )

    def stream_completed(self, request: StreamRequest) -> None:
        """Record a stream request completing on the wide port."""
        self._stream_events.append(
            (self.cycle, 1, STREAM_KINDS.index(request.kind))
        )

    # -- Z-buffer observer protocol ----------------------------------------
    def z_pushed(self, request: ZStoreRequest) -> None:
        """Record a computed Z line entering the store queue."""
        self._z_events.append((self.cycle, 0))

    def z_drained(self, request: ZStoreRequest) -> None:
        """Record a Z line leaving the store queue for the streamer."""
        self._z_events.append((self.cycle, 1))

    # -- trace assembly -----------------------------------------------------
    def finish(self, n: int, n_steps: int, deltas: dict,
               zbuf_out: int, pending_z_out: int) -> ScheduleTrace:
        """Assemble the :class:`ScheduleTrace` from the captured events.

        ``deltas`` carries the counter differences measured by the caller
        around the tile (see ``_INT_FIELDS``); the per-step ``active_mask``
        is distilled from the chain-head (``k == 0``) issue events and
        cross-checked against the issue evidence -- a mismatch means the
        recording hooks missed events and the trace must not be replayed.
        """
        issues = self._issues
        heads = sorted(
            (c, col, chunk, gated) for c, col, chunk, k, gated in issues
            if k == 0
        )
        if len(heads) != n_steps:
            raise RuntimeError(
                f"schedule recording captured {len(heads)} chain heads, "
                f"expected {n_steps}"
            )
        active = np.zeros(n_steps, dtype=bool)
        for pos, (_cycle, _col, _chunk, gated) in enumerate(heads):
            active[pos] = not gated
        if not np.array_equal(active, np.arange(n_steps) < n):
            raise RuntimeError(
                "recorded lane mask disagrees with the tile geometry "
                f"(n={n}, steps={n_steps})"
            )
        arrays = dict(
            active_mask=active,
            issue_cycles=np.asarray([e[0] for e in issues], np.int32),
            issue_cols=np.asarray([e[1] for e in issues], np.int16),
            issue_chunks=np.asarray([e[2] for e in issues], np.int32),
            issue_ks=np.asarray([e[3] for e in issues], np.int16),
            issue_gated=np.asarray([e[4] for e in issues], bool),
            stream_cycles=np.asarray(
                [e[0] for e in self._stream_events], np.int32),
            stream_phases=np.asarray(
                [e[1] for e in self._stream_events], np.int8),
            stream_kinds=np.asarray(
                [e[2] for e in self._stream_events], np.int8),
            z_event_cycles=np.asarray(
                [e[0] for e in self._z_events], np.int32),
            z_event_kinds=np.asarray(
                [e[1] for e in self._z_events], np.int8),
        )
        return ScheduleTrace(key=self.key, zbuf_out=zbuf_out,
                             pending_z_out=pending_z_out, **deltas, **arrays)


# ---------------------------------------------------------------------------
# data-plane replay
# ---------------------------------------------------------------------------


def replay_dataplane(
    x_bits: np.ndarray,
    w_bits: np.ndarray,
    acc_bits: np.ndarray,
    active_mask: np.ndarray,
    fmt: BinaryFormat,
    flags: Optional[ExceptionFlags] = None,
) -> np.ndarray:
    """Run the data plane of a recorded schedule over a batch of tiles.

    ``x_bits`` is ``(T, rows, N)``, ``w_bits`` ``(T, N, cols)`` and
    ``acc_bits`` ``(T, rows, cols)`` pattern arrays (``T`` tiles replayed
    side by side); ``active_mask`` is the recorded per-step lane mask.  The
    chain walks the active steps in recorded order, exactly the order the
    engine's chunk/column schedule consumes the inner dimension, so the
    result is bit-identical to the event-stepped datapath (and to the
    scalar oracle :func:`repro.redmule.functional.matmul_hw_order_exact`).

    Without ``flags`` each step runs the guarded float64 kernel (fast path;
    lanes at double-rounding risk fall back to the integer kernels).  With
    ``flags`` every step runs the integer kernels outright and aggregates
    the IEEE exception flags -- bit-identical values, scalar-oracle flags.
    """
    steps = np.flatnonzero(np.asarray(active_mask, dtype=bool))
    if flags is not None:
        dtype = format_dtype(fmt)
        acc = np.array(acc_bits, dtype=dtype)
        x = np.asarray(x_bits, dtype=dtype)
        w = np.asarray(w_bits, dtype=dtype)
        for n in steps:
            a = np.broadcast_to(x[:, :, n][:, :, None], acc.shape)
            b = np.broadcast_to(w[:, n, :][:, None, :], acc.shape)
            acc = fma_many_fmt(a, b, acc, fmt, flags=flags)
        return acc
    if fmt.name == "fp16":
        # Specialised binary16 kernel (same guarded construction, much
        # cheaper rounding than the format-generic path).
        x64 = np.asarray(x_bits, np.uint16).view(np.float16).astype(np.float64)
        w64 = np.asarray(w_bits, np.uint16).view(np.float16).astype(np.float64)
        acc = np.asarray(acc_bits, np.uint16).view(np.float16)
        for n in steps:
            acc = fma16_guarded_f64(
                x64[:, :, n][:, :, None], w64[:, n, :][:, None, :],
                acc.astype(np.float64),
            )
        return acc.view(np.uint16)
    x64 = bits_to_f64_many(x_bits, fmt)
    w64 = bits_to_f64_many(w_bits, fmt)
    acc64 = bits_to_f64_many(acc_bits, fmt)
    for n in steps:
        acc64 = fma_guarded_f64_fmt(
            x64[:, :, n][:, :, None], w64[:, n, :][:, None, :], acc64, fmt
        )
    return f64_to_bits_many(acc64, fmt)


# ---------------------------------------------------------------------------
# hybrid execution
# ---------------------------------------------------------------------------


class ReplaySession:
    """Record/replay execution of one job on a trace-backed engine.

    The engine drives the session tile by tile: :meth:`try_replay` serves a
    tile from the store (deferring its data plane into a signature-grouped
    batch and applying the recorded timing immediately), and when a tile
    must be event-stepped the engine first calls :meth:`flush` -- which
    materialises every deferred batch into the TCDM and reconstructs the
    real Z backlog (store queue + Z buffer) to the recorded boundary state
    -- then brackets the event-stepped tile with :meth:`begin_recording` /
    :meth:`commit_recording`.

    While replays are pending, the session tracks the Z backlog as a FIFO
    of line references: each replayed tile retires the recorded number of
    completed stores from the head and appends its own rows at the tail, so
    the backlog contents (not just its length) are exact at every boundary.
    """

    def __init__(self, engine, job, schedule, zbuf, state,
                 store: TraceStore) -> None:
        self.engine = engine
        self.job = job
        self.schedule = schedule
        self.zbuf = zbuf
        self.state = state
        self.store = store
        self.fmt = engine.config.binary_format
        self.supported = self._check_supported()
        self._recorder: Optional[TileRecorder] = None
        self._entry: dict = {}
        # Deferred replay batches, grouped by (rows, cols) signature.
        self._groups: Dict[Tuple[int, int], List[Tuple[object, ScheduleTrace]]] = {}
        # Z backlog while deferred: [addr, valid, bits-or-None, ref-or-None].
        self._backlog: List[list] = []
        self._live = True
        self._q = 0
        self._p = 0

    # -- eligibility --------------------------------------------------------
    def _check_supported(self) -> bool:
        """Replay shortcuts the memory traffic, so operand regions must be
        well-formed: strides element-aligned and the Z region disjoint from
        X and W (an aliasing job would observe the reordered writes)."""
        job = self.job
        eb = job.element_bytes
        for stride in (job.x_stride, job.w_stride, job.z_stride):
            if stride % eb:
                return False
        if job.z_stride < job.k * eb:
            return False  # overlapping Z rows
        z_lo = job.z_addr
        z_hi = job.z_addr + (job.m - 1) * job.z_stride + job.k * eb
        x_hi = job.x_addr + (job.m - 1) * job.x_stride + job.n * eb
        w_hi = job.w_addr + (job.n - 1) * job.w_stride + job.k * eb
        if z_lo < x_hi and job.x_addr < z_hi:
            return False
        if z_lo < w_hi and job.w_addr < z_hi:
            return False
        return True

    # -- keys ---------------------------------------------------------------
    def key_for(self, tile) -> TileKey:
        """Trace key of ``tile`` given the current Z backlog state."""
        if self._live:
            q = self.zbuf.occupancy
            p = self.engine.streamer.pending("z")
        else:
            q, p = self._q, self._p
        n, accumulate, rows, cols = self.schedule.tile_signature(tile)
        return tile_key(n, accumulate, rows, cols, q, p)

    # -- replay -------------------------------------------------------------
    def try_replay(self, tile) -> bool:
        """Serve ``tile`` from the store; returns False on a trace miss."""
        if not self.supported:
            return False
        trace = self.store.lookup(self.key_for(tile))
        if trace is None:
            return False
        if self._live:
            self._seed_backlog()
        # Stores completed during the replayed window retire the oldest
        # backlog entries; the tile's own rows join at the tail (they are
        # pushed after the window's last cycle, so they never complete
        # within it).  Entries carried over from event-stepped tiles hold
        # concrete bits and must land in the TCDM now -- deferred entries
        # are written when their batch is computed at flush time.
        retired = self._backlog[: trace.z_stores]
        del self._backlog[: trace.z_stores]
        eb = self.job.element_bytes
        for addr, valid, bits, _ref in retired:
            if bits is not None:
                self.engine.tcdm.write_element_line(
                    addr, np.asarray(bits)[:valid], eb)
        group_key = (tile.rows, tile.cols)
        group = self._groups.setdefault(group_key, [])
        slot = len(group)
        group.append((tile, trace))
        for row in range(tile.rows):
            self._backlog.append([
                self.job.z_element_addr(tile.m0 + row, tile.k0),
                tile.cols,
                None,
                (group_key, slot, row),
            ])
        self._q, self._p = trace.zbuf_out, trace.pending_z_out
        if len(self._backlog) != self._q + self._p:
            raise RuntimeError(
                f"trace replay desynchronised on tile {tile.index}: backlog "
                f"{len(self._backlog)} != {self._q} queued + {self._p} pending"
            )
        self._apply_timing(tile, trace)
        return True

    def _seed_backlog(self) -> None:
        """Capture the live Z backlog before the first deferred replay."""
        self._backlog = []
        for request in self.engine.streamer.snapshot_queue("z"):
            self._backlog.append([
                request.addr, request.n_elements,
                np.asarray(request.payload_bits), None,
            ])
        for request in self.zbuf.snapshot():
            self._backlog.append([
                request.addr, request.valid_elements,
                np.asarray(request.bits), None,
            ])
        self._live = False

    def _apply_timing(self, tile, trace: ScheduleTrace) -> None:
        """Apply a replayed tile's recorded deltas to the engine counters."""
        state = self.state
        state.total_cycles += trace.cycles
        state.stall_cycles += trace.stall_cycles
        state.active_cycles += trace.active_cycles
        datapath = self.engine.datapath
        datapath.column_issues += trace.column_issues
        datapath.fma_issues += trace.fma_issues
        stats = self.engine.streamer.stats
        stats.cycles += trace.cycles
        stats.w_loads += trace.w_loads
        stats.x_loads += trace.x_loads
        stats.y_loads += trace.y_loads
        stats.z_stores += trace.z_stores
        stats.idle_cycles += trace.idle_cycles
        self.zbuf.pushes += trace.z_pushes
        self.zbuf.drains += trace.z_drains
        if state.total_cycles > state.max_cycles:
            raise RuntimeError(
                f"simulation exceeded {state.max_cycles} cycles "
                f"({self.job.describe()}, tile {tile.index})"
            )

    # -- materialisation ----------------------------------------------------
    def flush(self) -> None:
        """Materialise every deferred batch and restore the live backlog."""
        if self._live:
            return
        outputs = {
            group_key: self._compute_group(group_key, entries)
            for group_key, entries in self._groups.items()
        }
        # Write every replayed line: completed stores land now, backlog
        # entries are re-written (identically) when the restored queues
        # drain through the streamer.
        tcdm = self.engine.tcdm
        eb = self.job.element_bytes
        for group_key, entries in self._groups.items():
            out = outputs[group_key]
            for slot, (tile, _trace) in enumerate(entries):
                for row in range(tile.rows):
                    tcdm.write_element_line(
                        self.job.z_element_addr(tile.m0 + row, tile.k0),
                        out[slot, row], eb,
                    )
        tail = []
        for addr, valid, bits, ref in self._backlog:
            if bits is None:
                group_key, slot, row = ref
                bits = outputs[group_key][slot, row]
            tail.append((addr, valid, np.asarray(bits)[:valid]))
        self.engine.streamer.restore_queue("z", [
            StreamRequest(kind="z", addr=addr, n_elements=valid, write=True,
                          payload_bits=bits)
            for addr, valid, bits in tail[: self._p]
        ])
        self.zbuf.restore([
            ZStoreRequest(addr=addr, bits=bits, valid_elements=valid)
            for addr, valid, bits in tail[self._p:]
        ])
        self._groups.clear()
        self._backlog = []
        self._live = True

    def _compute_group(self, group_key, entries) -> np.ndarray:
        """Batched data plane of every deferred tile sharing a signature."""
        rows, cols = group_key
        job = self.job
        n = job.n
        eb = job.element_bytes
        x_all = self._dump_matrix(job.x_addr, job.m, job.n, job.x_stride)
        w_all = self._dump_matrix(job.w_addr, job.n, job.k, job.w_stride)
        z_all = None
        if job.accumulate:
            z_all = self._dump_matrix(job.z_addr, job.m, job.k, job.z_stride)
        count = len(entries)
        dtype = format_dtype(self.fmt)
        x = np.empty((count, rows, n), dtype=dtype)
        w = np.empty((count, n, cols), dtype=dtype)
        acc = np.zeros((count, rows, cols), dtype=dtype)
        for slot, (tile, _trace) in enumerate(entries):
            x[slot] = x_all[tile.m0: tile.m0 + rows, :]
            w[slot] = w_all[:, tile.k0: tile.k0 + cols]
            if z_all is not None:
                acc[slot] = z_all[tile.m0: tile.m0 + rows,
                                  tile.k0: tile.k0 + cols]
        # Every trace of the group was recorded for the same (n, rows,
        # cols) signature, so they share one lane mask by construction.
        mask = entries[0][1].active_mask
        _ = eb  # element width is carried by the dtype
        return replay_dataplane(x, w, acc, mask, self.fmt)

    def _dump_matrix(self, addr: int, n_rows: int, n_cols: int,
                     stride: int) -> np.ndarray:
        """Bulk-read a (possibly strided) operand matrix as a pattern array."""
        eb = self.job.element_bytes
        dtype = np.dtype("<u2") if eb == 2 else np.dtype(np.uint8)
        nbytes = (n_rows - 1) * stride + n_cols * eb
        flat = np.frombuffer(self.engine.tcdm.dump_image(addr, nbytes),
                             dtype=dtype)
        if stride == n_cols * eb:
            return flat.reshape(n_rows, n_cols)
        row_stride = stride // eb
        return np.lib.stride_tricks.as_strided(
            flat, shape=(n_rows, n_cols),
            strides=(row_stride * dtype.itemsize, dtype.itemsize),
        ).copy()

    # -- recording ----------------------------------------------------------
    def begin_recording(self, tile) -> Optional[TileRecorder]:
        """Attach recording hooks around an event-stepped tile."""
        if not self.supported:
            return None
        recorder = TileRecorder(self.key_for(tile))
        streamer = self.engine.streamer
        self._entry = dict(
            total_cycles=self.state.total_cycles,
            stall_cycles=self.state.stall_cycles,
            active_cycles=self.state.active_cycles,
            column_issues=self.engine.datapath.column_issues,
            fma_issues=self.engine.datapath.fma_issues,
            w_loads=streamer.stats.w_loads,
            x_loads=streamer.stats.x_loads,
            y_loads=streamer.stats.y_loads,
            z_stores=streamer.stats.z_stores,
            idle_cycles=streamer.stats.idle_cycles,
            stream_stalls=streamer.stats.stall_cycles,
            z_pushes=self.zbuf.pushes,
            z_drains=self.zbuf.drains,
            wide_stalls=self.engine.hci.stats.wide_stalls,
        )
        streamer.observer = recorder
        self.zbuf.observer = recorder
        self._recorder = recorder
        return recorder

    def commit_recording(self, tile, recorder: TileRecorder) -> None:
        """Detach the hooks and store the trace (unless contention hit)."""
        self._detach(recorder)
        streamer = self.engine.streamer
        entry = self._entry
        contended = (
            self.engine.hci.stats.wide_stalls != entry["wide_stalls"]
            or streamer.stats.stall_cycles != entry["stream_stalls"]
        )
        if contended:
            # The schedule absorbed arbitration stalls, so it is neither
            # reusable nor keyed correctly for the idle environment.
            self.store.discard_recording()
            return
        deltas = dict(
            cycles=self.state.total_cycles - entry["total_cycles"],
            stall_cycles=self.state.stall_cycles - entry["stall_cycles"],
            active_cycles=self.state.active_cycles - entry["active_cycles"],
            column_issues=(self.engine.datapath.column_issues
                           - entry["column_issues"]),
            fma_issues=self.engine.datapath.fma_issues - entry["fma_issues"],
            w_loads=streamer.stats.w_loads - entry["w_loads"],
            x_loads=streamer.stats.x_loads - entry["x_loads"],
            y_loads=streamer.stats.y_loads - entry["y_loads"],
            z_stores=streamer.stats.z_stores - entry["z_stores"],
            idle_cycles=streamer.stats.idle_cycles - entry["idle_cycles"],
            z_pushes=self.zbuf.pushes - entry["z_pushes"],
            z_drains=self.zbuf.drains - entry["z_drains"],
        )
        n_steps = self.schedule.n_chunks * self.engine.config.height
        trace = recorder.finish(
            n=self.job.n,
            n_steps=n_steps,
            deltas=deltas,
            zbuf_out=self.zbuf.occupancy,
            pending_z_out=streamer.pending("z"),
        )
        self.store.store(trace)

    def _detach(self, recorder: Optional[TileRecorder]) -> None:
        if self.engine.streamer.observer is recorder:
            self.engine.streamer.observer = None
        if self.zbuf.observer is recorder:
            self.zbuf.observer = None
        self._recorder = None

    # -- teardown -----------------------------------------------------------
    def close(self) -> None:
        """Release the session (both success and abort paths).

        An abort mid-recording invalidates the partial trace simply by
        never committing it; the hooks are detached so a later job cannot
        deliver events into a dead recorder, and deferred batches are
        dropped (their timing was already charged to the failed run's
        counters, which die with the exception).
        """
        self._detach(self._recorder)
        self._groups.clear()
        self._backlog = []
        self._live = True
