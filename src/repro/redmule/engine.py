"""Cycle-accurate RedMulE engine.

This module ties together the datapath, buffers, streamer, scheduler and
controller into a cycle-by-cycle simulation of a complete matmul job:

* operands are read from (and results written to) the simulated TCDM through
  the HCI shallow branch, one wide access per cycle at most;
* the datapath issues at most one vector FMA per column per cycle, following
  the semi-systolic schedule of Section II-C (X operands held for
  ``H*(P+1)`` cycles, W operands broadcast every cycle, feedback after the
  last column);
* the whole array stalls when a W line or an X block is not resident when a
  column crosses a chunk boundary (ready/valid back-pressure);
* computed Z lines are queued in the Z buffer and drained through spare port
  slots.

The engine reports cycle counts, stall breakdowns and utilisation, and -- by
construction -- leaves the bit-exact (or numpy-exact) result of the
computation in the TCDM, so functional and timing verification use the same
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.interco.hci import Hci, HciConfig
from repro.mem.tcdm import Tcdm, TcdmConfig
from repro.obs import active as _telemetry_active
from repro.redmule.buffers import WLineBuffer, XBlockBuffer, ZStoreBuffer, ZStoreRequest
from repro.redmule.config import RedMulEConfig
from repro.redmule.controller import RedMulEController
from repro.redmule.datapath import Datapath
from repro.redmule.job import MatmulJob
from repro.redmule.scheduler import Tile, TileSchedule
from repro.redmule.streamer import Streamer, StreamRequest, StreamerStats
from repro.redmule.trace import ReplaySession, TraceStore, shared_trace_store
from repro.redmule.vector_ops import make_vector_ops


@dataclass
class RedMulEResult:
    """Outcome of one simulated job."""

    job: MatmulJob
    #: Total cycles from trigger to the last Z store leaving the streamer.
    cycles: int
    #: Cycles in which the datapath was frozen waiting for operands.
    stall_cycles: int
    #: Cycles in which the datapath issued at least one operation.
    active_cycles: int
    #: Useful multiply-accumulates (M*N*K).
    total_macs: int
    #: FMA slots actually issued by the array (padding included).
    issued_macs: int
    #: Number of tiles processed.
    n_tiles: int
    #: Peak throughput of the instance that ran the job (H * L MAC/cycle).
    #: Required so manually-built results cannot silently desync from
    #: non-reference H/L configurations; the engine fills it from
    #: ``config.ideal_macs_per_cycle``.
    peak_macs_per_cycle: int
    #: Port-level streamer statistics.
    streamer: StreamerStats = field(default_factory=StreamerStats)

    @property
    def macs_per_cycle(self) -> float:
        """Useful MACs per cycle (the paper's throughput metric)."""
        if self.cycles == 0:
            return 0.0
        return self.total_macs / self.cycles

    @property
    def utilisation(self) -> float:
        """Useful MACs per cycle divided by the array's peak (H*L)."""
        if self.cycles == 0 or self.peak_macs_per_cycle == 0:
            return 0.0
        return self.macs_per_cycle / self.peak_macs_per_cycle

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.job.describe()}: {self.cycles} cycles, "
            f"{self.macs_per_cycle:.2f} MAC/cycle, "
            f"{self.stall_cycles} stalls, {self.n_tiles} tiles"
        )


@dataclass
class _JobState:
    """Mutable per-job cycle accounting shared by event-stepping and replay."""

    max_cycles: int
    total_cycles: int = 0
    stall_cycles: int = 0
    active_cycles: int = 0


class RedMulE:
    """Cycle-accurate model of one RedMulE instance attached to an HCI.

    The arithmetic backend is selected by ``backend`` (a name from the
    vector-ops registry: ``"exact"``, ``"exact-simd"``, ``"fast"`` or
    ``"trace"``), or by the legacy ``exact`` boolean, or -- when neither is
    given -- by the configuration's ``arithmetic`` field.

    The ``"trace"`` backend record/replays compiled cycle schedules (see
    :mod:`repro.redmule.trace`): traces live in the process-wide store of
    this architectural configuration unless an explicit ``trace_store`` is
    passed.
    """

    def __init__(
        self,
        config: Optional[RedMulEConfig] = None,
        hci: Optional[Hci] = None,
        exact: Optional[bool] = None,
        backend: Optional[str] = None,
        trace_store: Optional[TraceStore] = None,
    ) -> None:
        self.config = config if config is not None else RedMulEConfig.reference()
        if hci is None:
            tcdm = Tcdm(TcdmConfig())
            hci = Hci(tcdm, HciConfig(n_wide_ports=self.config.n_mem_ports))
        self.hci = hci
        if backend is None:
            if exact is not None:
                backend = "exact" if exact else "fast"
            else:
                backend = self.config.arithmetic
        self.ops = make_vector_ops(backend, self.config.binary_format)
        #: Name of the arithmetic backend driving the datapath.
        self.backend = self.ops.name
        #: True when the backend reproduces the hardware bits exactly.
        self.exact = self.ops.bit_exact
        self.datapath = Datapath(self.config, vector_ops=self.ops)
        self.controller = RedMulEController()
        self.streamer = Streamer(self.config, hci)
        #: Schedule-trace store driving record/replay (None for plain backends).
        self._trace_store: Optional[TraceStore] = None
        if self.ops.schedule_compiled:
            self._trace_store = (trace_store if trace_store is not None
                                 else shared_trace_store(self.config))
        #: The live :class:`~repro.redmule.trace.ReplaySession`, if any.
        self._session: Optional[ReplaySession] = None
        #: Results of every job run on this instance.
        self.history: List[RedMulEResult] = []

    # ------------------------------------------------------------------
    @property
    def tcdm(self) -> Tcdm:
        """The TCDM this instance reads and writes."""
        return self.hci.tcdm

    def offload(self, job: MatmulJob, max_cycles: Optional[int] = None) -> RedMulEResult:
        """Full software-style offload: program the register file, run, finish.

        If the simulation aborts mid-job (e.g. the ``max_cycles`` watchdog
        fires), the controller context is released before the exception
        propagates, so the instance stays usable -- otherwise every later
        ``offload`` would fail with "RedMulE is busy".
        """
        if self.controller.acquire() != 0:
            raise RuntimeError("RedMulE is busy")
        completed = False
        try:
            self.controller.program_job(job)
            triggered = self.controller.trigger()
            result = self.run_job(triggered, max_cycles=max_cycles)
            self.controller.fsm.tick(result.cycles)
            self.controller.finish()
            completed = True
            return result
        finally:
            if completed:
                self.controller.clear()
            else:
                self.controller.abort()

    # ------------------------------------------------------------------
    def run_job(self, job: MatmulJob, max_cycles: Optional[int] = None) -> RedMulEResult:
        """Simulate one matmul job cycle by cycle.

        The result matrix is written into the TCDM at ``job.z_addr`` and the
        timing statistics are returned.  If the simulation aborts (e.g. the
        ``max_cycles`` watchdog fires), the transient engine state -- queued
        streamer requests and in-flight datapath operations -- is flushed
        before the exception propagates, so the instance can run further
        jobs without the dead job's residue corrupting them.

        Jobs in the mapped engine-hang domain are rejected with a clear
        ``ValueError`` up front: a tile whose live-row count exceeds the Z
        store queue can never drain (the tile-exit condition
        ``occupancy + rows <= depth`` is unsatisfiable), so the engine would
        spin until the watchdog instead of making progress.
        """
        cfg = self.config
        if job.element_bytes != cfg.element_bytes:
            raise ValueError(
                f"job element width ({8 * job.element_bytes} bits) does not "
                f"match the configured {cfg.format} elements "
                f"({cfg.element_bits} bits)"
            )
        live_rows = min(cfg.length, job.m)
        if cfg.z_queue_depth < live_rows:
            raise ValueError(
                f"z_queue_depth={cfg.z_queue_depth} is below the live-row "
                f"requirement of this job (min(L={cfg.length}, M={job.m}) = "
                f"{live_rows}): the engine would deadlock waiting for Z "
                f"queue space that can never exist"
            )
        try:
            return self._run_job(job, max_cycles)
        except BaseException:
            self.streamer.flush()
            self.datapath.flush()
            raise

    def _run_job(self, job: MatmulJob, max_cycles: Optional[int]) -> RedMulEResult:
        cfg = self.config

        schedule = TileSchedule(job, cfg)
        xbuf = XBlockBuffer(cfg, capacity_blocks=2)
        wbuf = WLineBuffer(cfg)
        zbuf = ZStoreBuffer(cfg)
        self.datapath.flush()
        self.streamer.reset_stats()
        fma_issues_at_start = self.datapath.fma_issues

        if max_cycles is None:
            max_cycles = 20_000 + 4 * schedule.issued_macs() // cfg.n_fma
        state = _JobState(max_cycles=max_cycles)

        # W lines in the order the datapath will need them.
        w_need_order = sorted(
            (col * cfg.latency + chunk * cfg.block_k, col, chunk)
            for chunk in range(schedule.n_chunks)
            for col in range(cfg.height)
        )

        session: Optional[ReplaySession] = None
        if self._trace_store is not None:
            session = ReplaySession(self, job, schedule, zbuf, state,
                                    self._trace_store)
            if not session.supported:
                session = None
        self._session = session

        # Per-tile spans are stamped in *engine cycles* on a per-job lane.
        # Replay applies a tile's recorded timing in ``try_replay`` (only
        # the data plane is deferred), so the tile boundaries -- and hence
        # the exported timeline -- are identical between the event-stepped
        # and trace-replay backends; only the ``replayed`` attribute tells
        # them apart.  The disabled path costs one check per tile.
        obs = _telemetry_active()
        monitor = obs.enabled
        if monitor:
            obs.declare_track("engine", "cycles")
            lane = f"job{len(self.history)}"

        try:
            for tile in schedule:
                if monitor:
                    tile_start = state.total_cycles
                    stalls_before = state.stall_cycles
                    active_before = state.active_cycles
                replayed = session is not None and session.try_replay(tile)
                if not replayed:
                    if session is not None:
                        # An event-stepped tile needs the real machine
                        # state; materialise any deferred replays first.
                        session.flush()
                        recorder = session.begin_recording(tile)
                    else:
                        recorder = None
                    self._run_tile(job, schedule, tile, xbuf, wbuf, zbuf,
                                   w_need_order, state, recorder)
                    if recorder is not None:
                        session.commit_recording(tile, recorder)
                if monitor:
                    obs.complete_span(
                        f"tile{tile.index}", tile_start, state.total_cycles,
                        track="engine", lane=lane, cat="tile",
                        rows=tile.rows, cols=tile.cols,
                        stall_cycles=state.stall_cycles - stalls_before,
                        active_cycles=state.active_cycles - active_before,
                        replayed=replayed)
            if session is not None:
                session.flush()

            # Drain the remaining Z stores.
            if monitor:
                drain_start = state.total_cycles
            while not zbuf.empty or self.streamer.busy:
                state.total_cycles += 1
                if state.total_cycles > state.max_cycles:
                    raise RuntimeError(
                        "simulation exceeded max_cycles during Z drain")
                self._drain_zbuf(zbuf)
                self.streamer.cycle()
            if monitor:
                obs.complete_span("z_drain", drain_start, state.total_cycles,
                                  track="engine", lane=lane, cat="drain")
        finally:
            self._session = None
            if session is not None:
                session.close()

        result = RedMulEResult(
            job=job,
            cycles=state.total_cycles,
            stall_cycles=state.stall_cycles,
            active_cycles=state.active_cycles,
            total_macs=job.total_macs,
            issued_macs=self.datapath.fma_issues - fma_issues_at_start,
            n_tiles=schedule.n_tiles,
            peak_macs_per_cycle=cfg.ideal_macs_per_cycle,
            streamer=self.streamer.stats,
        )
        if monitor:
            obs.complete_span(
                f"gemm {job.m}x{job.n}x{job.k}", 0, state.total_cycles,
                track="engine", lane=lane, cat="job", m=job.m, n=job.n,
                k=job.k, backend=self.backend, tiles=schedule.n_tiles,
                stall_cycles=state.stall_cycles,
                active_cycles=state.active_cycles)
            obs.count("engine.jobs")
            obs.observe("engine.job_cycles", state.total_cycles)
            obs.observe("engine.stall_cycles", state.stall_cycles)
        self.history.append(result)
        return result

    def _run_tile(self, job: MatmulJob, schedule: TileSchedule, tile: Tile,
                  xbuf: XBlockBuffer, wbuf: WLineBuffer, zbuf: ZStoreBuffer,
                  w_need_order, state: _JobState, recorder) -> None:
        """Event-step one tile of the job (the original engine hot loop).

        When ``recorder`` is given (trace backend, cold tile) every control
        event of the tile -- streamer enqueues/completions via the observer
        hooks, Z pushes/drains, and the datapath issues reported below -- is
        captured so the schedule can be replayed for later tiles of the same
        signature.
        """
        cfg = self.config
        height, length = cfg.height, cfg.length
        latency, block_k = cfg.latency, cfg.block_k
        lanes = cfg.elements_per_slot
        epl = cfg.elements_per_line
        ops = self.ops
        n_chunks = schedule.n_chunks
        n_blocks = schedule.n_blocks
        issue_end = (height - 1) * latency + n_chunks * block_k

        # Shared read-only zero lines in the strategy's own representations:
        # a vector-shaped line for X/Y padding and a W-line for padded chunks.
        zero_line_vec = ops.zeros(epl)
        zero_w_line = ops.zero_line(epl)
        zero_vec = ops.zeros(length * lanes)

        xbuf.reset()
        wbuf.reset()
        feedback = [zero_vec] * block_k
        z_tile: List[Optional[object]] = [None] * block_k
        z_done = 0
        x_current = [zero_vec] * height
        x_enqueued_blocks = 0
        w_ptr = 0
        t = 0

        # Accumulation jobs (Z += X . W) pre-load the existing Z lines of
        # this tile into the row accumulators before the first issue.
        y_lines: List[Optional[object]] = [None] * length
        y_pending = 0
        y_applied = not job.accumulate
        if job.accumulate:
            for row in range(length):
                if row < tile.rows:
                    self.streamer.enqueue(
                        StreamRequest(
                            kind="y",
                            addr=job.z_element_addr(tile.m0 + row, tile.k0),
                            n_elements=tile.cols,
                            meta=("y", row),
                        )
                    )
                    y_pending += 1
                else:
                    y_lines[row] = zero_line_vec

        while True:
            if recorder is not None:
                recorder.begin_cycle()
            state.total_cycles += 1
            if state.total_cycles > state.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {state.max_cycles} cycles "
                    f"({job.describe()}, tile {tile.index})"
                )

            # ---- 1. memory: one wide port cycle --------------------------
            self._drain_zbuf(zbuf)
            finished = self.streamer.cycle()
            if finished is not None and not finished.write:
                if finished.kind == "y":
                    _, row = finished.meta
                    y_lines[row] = ops.from_bits(finished.data_bits)
                    y_pending -= 1
                else:
                    self._fill_buffer(finished, xbuf, wbuf, ops)

            # Once every Z pre-load line has arrived, seed the feedback
            # registers with the existing Z values (column-major view).
            if not y_applied and y_pending == 0:
                for k in range(block_k):
                    feedback[k] = ops.gather_slot(y_lines, k)
                y_applied = True

            # ---- 2. demand-driven request generation ----------------------
            x_enqueued_blocks = self._enqueue_x(
                job, tile, xbuf, zero_line_vec,
                x_enqueued_blocks, n_blocks, t,
            )
            w_ptr = self._enqueue_w(
                job, tile, wbuf, zero_w_line, w_need_order, w_ptr, t,
            )

            # ---- 3. datapath ----------------------------------------------
            if t < issue_end:
                ready = y_applied and self._resources_ready(
                    job, tile, xbuf, wbuf, t, n_chunks
                )
            else:
                ready = True

            if ready:
                completions = self.datapath.tick()
                last = completions.get(height - 1)
                if last is not None:
                    if last.chunk == n_chunks - 1:
                        z_tile[last.k] = last.values
                        z_done += 1
                    else:
                        feedback[last.k] = last.values
                if t < issue_end:
                    issued = self._issue_cycle(
                        job, tile, xbuf, wbuf, x_current, feedback,
                        completions, t, n_chunks, recorder,
                    )
                    if issued:
                        state.active_cycles += 1
                t += 1
            else:
                state.stall_cycles += 1

            # ---- 4. tile completion ----------------------------------------
            # The tile ends once every result has drained out of the
            # array *and* the Z buffer has room for this tile's lines
            # (otherwise keep cycling so pending stores trickle out).
            if (
                t >= issue_end
                and not self.datapath.busy
                and zbuf.occupancy + tile.rows <= zbuf.depth
            ):
                break

        if z_done != block_k:
            raise RuntimeError(
                f"tile {tile.index}: expected {block_k} output columns, "
                f"got {z_done}"
            )
        self._push_z(job, tile, z_tile, zbuf, ops)

    # -- helpers -----------------------------------------------------------
    def _drain_zbuf(self, zbuf: ZStoreBuffer) -> None:
        """Move pending Z lines into the streamer's store queue (one per cycle)."""
        if not zbuf.empty and self.streamer.pending("z") < 2:
            request = zbuf.pop()
            self.streamer.enqueue(
                StreamRequest(
                    kind="z",
                    addr=request.addr,
                    n_elements=request.valid_elements,
                    write=True,
                    payload_bits=request.bits[: request.valid_elements],
                )
            )

    def _fill_buffer(self, finished: StreamRequest, xbuf: XBlockBuffer,
                     wbuf: WLineBuffer, ops) -> None:
        """Route a completed load into the X or W buffer."""
        if finished.kind == "w":
            _, col, chunk = finished.meta
            wbuf.load_line(col, chunk, ops.from_line(finished.data_bits))
        elif finished.kind == "x":
            _, block, row = finished.meta
            xbuf.load_line(block, row, ops.from_bits(finished.data_bits))
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unexpected load kind {finished.kind!r}")

    def _enqueue_x(self, job: MatmulJob, tile: Tile, xbuf: XBlockBuffer,
                   zero_line_vec, next_block: int, n_blocks: int,
                   t: int) -> int:
        """Enqueue X block loads one block ahead of consumption."""
        cfg = self.config
        # One block carries elements_per_line inner-dimension operands and
        # is consumed over (elements_per_line / H) chunks of block_k cycles.
        block_cycles = cfg.latency * cfg.block_k * cfg.elements_per_slot
        while (
            next_block < n_blocks
            and t >= (next_block - 1) * block_cycles
            and xbuf.can_accept(next_block)
        ):
            n_start = next_block * cfg.elements_per_line
            n_count = min(cfg.elements_per_line, job.n - n_start)
            for row in range(cfg.length):
                if row < tile.rows and n_count > 0:
                    self.streamer.enqueue(
                        StreamRequest(
                            kind="x",
                            addr=job.x_element_addr(tile.m0 + row, n_start),
                            n_elements=n_count,
                            meta=("x", next_block, row),
                        )
                    )
                else:
                    xbuf.load_line(next_block, row, zero_line_vec)
            next_block += 1
        return next_block

    def _enqueue_w(self, job: MatmulJob, tile: Tile, wbuf: WLineBuffer,
                   zero_w_line, w_need_order, w_ptr: int,
                   t: int) -> int:
        """Enqueue W line loads one line-time ahead of their first broadcast."""
        cfg = self.config
        horizon = cfg.block_k * cfg.w_prefetch_lines
        while w_ptr < len(w_need_order) and w_need_order[w_ptr][0] <= t + horizon:
            _, col, chunk = w_need_order[w_ptr]
            n = chunk * cfg.height + col
            if n < job.n:
                self.streamer.enqueue(
                    StreamRequest(
                        kind="w",
                        addr=job.w_element_addr(n, tile.k0),
                        n_elements=tile.cols,
                        meta=("w", col, chunk),
                    )
                )
            else:
                wbuf.load_line(col, chunk, zero_w_line)
            w_ptr += 1
        return w_ptr

    def _resources_ready(self, job: MatmulJob, tile: Tile, xbuf: XBlockBuffer,
                         wbuf: WLineBuffer, t: int, n_chunks: int) -> bool:
        """Check whether the column crossing a chunk boundary has its operands."""
        cfg = self.config
        for col in range(cfg.height):
            slot = t - col * cfg.latency
            if slot < 0:
                continue
            chunk, k = divmod(slot, cfg.block_k)
            if chunk >= n_chunks or k != 0:
                continue
            n = chunk * cfg.height + col
            if n >= job.n:
                continue
            if not wbuf.has_line(col, chunk):
                return False
            if not xbuf.block_ready(n // cfg.elements_per_line):
                return False
        return True

    def _issue_cycle(self, job: MatmulJob, tile: Tile, xbuf: XBlockBuffer,
                     wbuf: WLineBuffer, x_current: List[object],
                     feedback: List[object], completions: Dict[int, object],
                     t: int, n_chunks: int, recorder=None) -> bool:
        """Issue every active column for tile-time ``t``; returns True if any."""
        cfg = self.config
        ops = self.ops
        issued = False
        for col in range(cfg.height):
            slot = t - col * cfg.latency
            if slot < 0:
                continue
            chunk, k = divmod(slot, cfg.block_k)
            if chunk >= n_chunks:
                continue
            n = chunk * cfg.height + col

            if k == 0 and n < job.n:
                block, offset = divmod(n, cfg.elements_per_line)
                x_current[col] = ops.gather(xbuf.lines(block), offset)

            if col == 0:
                acc = feedback[k]
            else:
                previous = completions.get(col - 1)
                if previous is None or previous.chunk != chunk or previous.k != k:
                    raise RuntimeError(
                        f"systolic chaining broken at t={t}, column {col}, "
                        f"chunk {chunk}, k {k}"
                    )
                acc = previous.values

            if n < job.n:
                w_bits = ops.w_slot(wbuf.line(col, chunk), k)
                self.datapath.issue(col, chunk, k, x_current[col], w_bits, acc)
            else:
                # Inner-dimension padding: the lane is operand-gated and the
                # accumulator passes through untouched (preserves -0 exactly
                # like the hardware's gated FMA does).
                self.datapath.issue_gated(col, chunk, k, acc)
            if recorder is not None:
                recorder.issue(col, chunk, k, n >= job.n)
            issued = True

            if k == cfg.block_k - 1:
                if n < job.n:
                    wbuf.evict(col, chunk)
                if col == cfg.height - 1:
                    xbuf.evict_before(
                        ((chunk + 1) * cfg.height) // cfg.elements_per_line
                    )
        return issued

    def _push_z(self, job: MatmulJob, tile: Tile, z_tile: List[object],
                zbuf: ZStoreBuffer, ops) -> None:
        """Convert the finished tile into Z line store requests.

        The whole tile is transposed to per-row lines in one strategy call,
        which is also where a lazily evaluating strategy materialises all of
        the tile's accumulator chains in a single batch.  For packed formats
        the tile covers ``lanes`` elements per slot, so only the slots whose
        leading lane is architecturally valid are stored (the store request
        then truncates the possibly half-valid last slot to ``tile.cols``
        elements).
        """
        n_slots = -(-tile.cols // self.config.elements_per_slot)
        lines = ops.to_lines(z_tile[:n_slots])
        for row in range(tile.rows):
            accepted = zbuf.push(
                ZStoreRequest(
                    addr=job.z_element_addr(tile.m0 + row, tile.k0),
                    bits=lines[row],
                    valid_elements=tile.cols,
                )
            )
            if not accepted:
                raise RuntimeError("Z store buffer overflow")
