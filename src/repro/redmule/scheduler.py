"""Tiling scheduler: how a matmul job maps onto the FMA array.

RedMulE processes ``Z = X . W`` as a grid of *tiles*: each tile covers ``L``
consecutive rows of Z (one per FMA row) and ``block_k = H*(P+1)`` consecutive
columns of Z (the elements a row keeps in flight), and accumulates over the
whole inner dimension ``N`` in chunks of ``H``.  Edge tiles at the bottom /
right of Z are narrower; the scheduler captures their true extent so the
engine can skip memory traffic for padding lanes while still issuing the full
array (padding lanes compute on zeros, exactly like the real hardware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.redmule.config import RedMulEConfig
from repro.redmule.job import MatmulJob


@dataclass(frozen=True)
class Tile:
    """One L x elements_per_line output tile of the job."""

    #: Linear tile index (row-major over the tile grid).
    index: int
    #: First Z row covered by the tile.
    m0: int
    #: First Z column covered by the tile.
    k0: int
    #: Number of architecturally valid rows (<= L).
    rows: int
    #: Number of architecturally valid columns (<= elements_per_line).
    cols: int


class TileSchedule:
    """Iterates the tile grid of a job for a given RedMulE configuration."""

    def __init__(self, job: MatmulJob, config: RedMulEConfig) -> None:
        self.job = job
        self.config = config

    # -- grid geometry -------------------------------------------------------
    @property
    def tiles_m(self) -> int:
        """Number of tile rows (ceil(M / L))."""
        return -(-self.job.m // self.config.length)

    @property
    def tiles_k(self) -> int:
        """Number of tile columns (ceil(K / elements_per_line))."""
        return -(-self.job.k // self.config.elements_per_line)

    @property
    def n_tiles(self) -> int:
        """Total number of tiles."""
        return self.tiles_m * self.tiles_k

    @property
    def n_chunks(self) -> int:
        """Inner-dimension chunks per tile (ceil(N / H))."""
        return -(-self.job.n // self.config.height)

    @property
    def n_blocks(self) -> int:
        """X blocks per tile: line-sized groups of the inner dimension."""
        return -(-self.n_chunks * self.config.height
                 // self.config.elements_per_line)

    # -- iteration --------------------------------------------------------------
    def tile(self, index: int) -> Tile:
        """Return the tile with linear ``index`` (row-major: K inner, M outer)."""
        if not (0 <= index < self.n_tiles):
            raise IndexError(f"tile index {index} out of range 0..{self.n_tiles - 1}")
        tile_m, tile_k = divmod(index, self.tiles_k)
        m0 = tile_m * self.config.length
        k0 = tile_k * self.config.elements_per_line
        return Tile(
            index=index,
            m0=m0,
            k0=k0,
            rows=min(self.config.length, self.job.m - m0),
            cols=min(self.config.elements_per_line, self.job.k - k0),
        )

    def __iter__(self) -> Iterator[Tile]:
        for index in range(self.n_tiles):
            yield self.tile(index)

    def __len__(self) -> int:
        return self.n_tiles

    def tiles(self) -> List[Tile]:
        """All tiles as a list."""
        return list(self)

    def tile_signature(self, tile: Tile):
        """The geometry that determines a tile's cycle schedule.

        Two tiles with equal signatures run the exact same control schedule
        (given equal entry state): the inner dimension fixes the chunk
        count and gating pattern, ``accumulate`` adds the Y pre-load
        traffic, and ``rows``/``cols`` set the X/Z line extents.  Position
        (``m0``/``k0``) only changes addresses, which never affect timing on
        an uncontended port.  This is the per-tile part of the trace key
        used by :mod:`repro.redmule.trace`.
        """
        return (self.job.n, bool(self.job.accumulate), tile.rows, tile.cols)

    # -- accounting ----------------------------------------------------------------
    def tile_macs(self, tile: Tile) -> int:
        """Useful MACs of one tile (``rows * cols * N``)."""
        return tile.rows * tile.cols * self.job.n

    def issued_macs(self) -> int:
        """MAC slots issued by the array for the whole job, padding included.

        The array always issues ``L * elements_per_line`` lanes per chunk
        per tile, so padding lanes (rows beyond M, columns beyond K, inner
        padding beyond N) are issued but architecturally useless.  The ratio
        of ``job.total_macs`` to this number is the array's spatial
        utilisation.
        """
        per_tile = self.config.length * self.config.elements_per_line * (
            self.n_chunks * self.config.height
        )
        return per_tile * self.n_tiles
