"""RedMulE job descriptor.

A *job* is what software programs into the register file before triggering
the accelerator: the addresses and strides of the three operand matrices and
the problem size ``(M, N, K)`` of ``Z[M,K] = X[M,N] . W[N,K]``.  The
descriptor used here mirrors the register map in
:mod:`repro.redmule.controller` one-to-one, so a job can be round-tripped
through the register file without loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.mem.layout import ELEMENT_BYTES, MatrixHandle


@dataclass(frozen=True)
class MatmulJob:
    """A matrix-multiplication job ``Z = X . W``.

    Attributes
    ----------
    x_addr, w_addr, z_addr:
        Byte addresses of the three matrices in TCDM.
    m, n, k:
        Problem size: X is ``m x n``, W is ``n x k``, Z is ``m x k``.
    x_stride, w_stride, z_stride:
        Row strides in bytes (dense row-major when left at 0).
    accumulate:
        When ``True`` the engine computes ``Z += X . W``: the existing
        contents of the Z region are pre-loaded into the row accumulators
        before the first inner-dimension chunk, which is how a tiled GEMM
        larger than the TCDM (or a bias add) is composed from several jobs.
    element_bytes:
        Bytes per matrix element (2 for FP16/BF16, 1 for the FP8 formats).
        Must match the element width of the configuration the job runs on.
    """

    x_addr: int
    w_addr: int
    z_addr: int
    m: int
    n: int
    k: int
    x_stride: int = 0
    w_stride: int = 0
    z_stride: int = 0
    accumulate: bool = False
    element_bytes: int = ELEMENT_BYTES

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"job dimensions must be positive, got "
                             f"M={self.m} N={self.n} K={self.k}")
        if self.element_bytes not in (1, 2):
            raise ValueError("element_bytes must be 1 or 2")
        for name, addr in (("x", self.x_addr), ("w", self.w_addr), ("z", self.z_addr)):
            if addr < 0:
                raise ValueError(f"{name}_addr must be non-negative")
            if addr % self.element_bytes:
                raise ValueError(f"{name}_addr must be element-aligned")
        object.__setattr__(self, "x_stride",
                           self.x_stride or self.n * self.element_bytes)
        object.__setattr__(self, "w_stride",
                           self.w_stride or self.k * self.element_bytes)
        object.__setattr__(self, "z_stride",
                           self.z_stride or self.k * self.element_bytes)

    # ------------------------------------------------------------------
    @classmethod
    def from_handles(cls, x: MatrixHandle, w: MatrixHandle,
                     z: MatrixHandle, accumulate: bool = False) -> "MatmulJob":
        """Build a job from three :class:`MatrixHandle` descriptors.

        Shapes are checked for consistency (``x.cols == w.rows`` etc.), which
        catches the most common programming errors before they turn into
        silent garbage in the simulated memory.
        """
        if x.cols != w.rows:
            raise ValueError(
                f"inner dimensions disagree: X is {x.rows}x{x.cols}, "
                f"W is {w.rows}x{w.cols}"
            )
        if z.rows != x.rows or z.cols != w.cols:
            raise ValueError(
                f"output shape mismatch: Z is {z.rows}x{z.cols}, "
                f"expected {x.rows}x{w.cols}"
            )
        if not (x.element_bytes == w.element_bytes == z.element_bytes):
            raise ValueError("operand handles disagree on the element width")
        return cls(
            x_addr=x.base,
            w_addr=w.base,
            z_addr=z.base,
            m=x.rows,
            n=x.cols,
            k=w.cols,
            x_stride=x.row_stride,
            w_stride=w.row_stride,
            z_stride=z.row_stride,
            accumulate=accumulate,
            element_bytes=x.element_bytes,
        )

    # -- derived properties --------------------------------------------------
    @property
    def total_macs(self) -> int:
        """Useful multiply-accumulate operations in the job (``M*N*K``)."""
        return self.m * self.n * self.k

    @property
    def total_flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.total_macs

    @property
    def x_handle(self) -> MatrixHandle:
        """Handle describing the X operand."""
        return MatrixHandle(self.x_addr, self.m, self.n, self.x_stride,
                            name="X", element_bytes=self.element_bytes)

    @property
    def w_handle(self) -> MatrixHandle:
        """Handle describing the W operand."""
        return MatrixHandle(self.w_addr, self.n, self.k, self.w_stride,
                            name="W", element_bytes=self.element_bytes)

    @property
    def z_handle(self) -> MatrixHandle:
        """Handle describing the Z result."""
        return MatrixHandle(self.z_addr, self.m, self.k, self.z_stride,
                            name="Z", element_bytes=self.element_bytes)

    # -- element addressing -----------------------------------------------------
    def x_element_addr(self, row: int, col: int) -> int:
        """Byte address of X[row, col]."""
        return self.x_addr + row * self.x_stride + col * self.element_bytes

    def w_element_addr(self, row: int, col: int) -> int:
        """Byte address of W[row, col]."""
        return self.w_addr + row * self.w_stride + col * self.element_bytes

    def z_element_addr(self, row: int, col: int) -> int:
        """Byte address of Z[row, col]."""
        return self.z_addr + row * self.z_stride + col * self.element_bytes

    def describe(self) -> str:
        """One-line summary used by traces and reports."""
        return (
            f"matmul M={self.m} N={self.n} K={self.k} "
            f"({self.total_macs} MACs) X@{self.x_addr:#x} W@{self.w_addr:#x} "
            f"Z@{self.z_addr:#x}"
        )
