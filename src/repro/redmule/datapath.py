"""The semi-systolic FMA array (column-pipeline implementation).

All ``L`` rows of the array execute the same schedule, so the cycle-accurate
model keeps one pipeline per *column* whose entries carry a vector of ``L``
values (one per row).  An entry issued into column ``c`` at cycle ``t``
completes at ``t + P + 1`` and its result vector becomes the accumulation
input of column ``c + 1`` (or the feedback / output of the row when ``c`` is
the last column), exactly reproducing the wiring of Fig. 2b.

The datapath does not know about tiles, memory or stalls -- the engine decides
when to issue what.  It only enforces structural legality (one issue per
column per cycle, bounded pipeline depth) and evaluates the FP16 arithmetic
through a :class:`~repro.redmule.vector_ops.VectorOps` strategy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.redmule.config import RedMulEConfig
from repro.redmule.vector_ops import VectorOps, make_vector_ops


@dataclass
class ColumnEntry:
    """An FMA operation (for all L rows at once) in flight in one column."""

    #: Tag identifying the operation: (chunk index, k index within the tile).
    chunk: int
    k: int
    #: Result vector (evaluated at issue; the pipeline models latency only).
    values: object
    #: Remaining cycles until the result is available downstream.
    remaining: int


class Datapath:
    """``H`` column pipelines of ``L``-wide FP16 FMA vectors.

    ``exact`` selects the arithmetic strategy from the vector-ops registry:
    it accepts a backend name (``"exact"``, ``"exact-simd"``, ``"fast"``) or
    the legacy boolean (``True`` = scalar bit-exact, ``False`` = float64).
    """

    def __init__(self, config: RedMulEConfig, exact=True,
                 vector_ops: Optional[VectorOps] = None) -> None:
        self.config = config
        if vector_ops is None:
            vector_ops = make_vector_ops(exact, config.binary_format)
        self.ops = vector_ops
        self._pipes: List[Deque[ColumnEntry]] = [
            deque() for _ in range(config.height)
        ]
        self._issued_this_cycle = [False] * config.height
        #: Total column issues performed (each is ``L * lanes`` MAC lanes).
        self.column_issues = 0
        #: Total MAC lanes issued (``column_issues * L * elements_per_slot``).
        self.fma_issues = 0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while any column still has operations in flight."""
        return any(self._pipes)

    def occupancy(self, column: int) -> int:
        """Number of in-flight entries in ``column``."""
        return len(self._pipes[column])

    def tick(self) -> Dict[int, ColumnEntry]:
        """Advance one cycle.

        Returns a map ``column -> entry`` of the operations that completed
        this cycle (at most one per column).  Must be called exactly once per
        simulated cycle, before any :meth:`issue` of that cycle.
        """
        completed: Dict[int, ColumnEntry] = {}
        for column, pipe in enumerate(self._pipes):
            self._issued_this_cycle[column] = False
            for entry in pipe:
                entry.remaining -= 1
            if pipe and pipe[0].remaining == 0:
                completed[column] = pipe.popleft()
        return completed

    def _enqueue(self, column: int, chunk: int, k: int, values) -> None:
        """Structural-legality checks plus bookkeeping shared by both issues."""
        config = self.config
        if not (0 <= column < config.height):
            raise IndexError(f"column {column} out of range")
        if self._issued_this_cycle[column]:
            raise RuntimeError(f"column {column}: second issue in the same cycle")
        pipe = self._pipes[column]
        latency = config.latency
        if len(pipe) >= latency:
            raise RuntimeError(
                f"column {column}: pipeline overflow "
                f"({len(pipe)} entries, latency {latency})"
            )
        pipe.append(
            ColumnEntry(chunk=chunk, k=k, values=values, remaining=latency)
        )
        self._issued_this_cycle[column] = True
        self.column_issues += 1
        self.fma_issues += config.length * config.elements_per_slot

    def issue(self, column: int, chunk: int, k: int, x_vector, w_bits: int,
              acc_vector) -> None:
        """Issue ``x * w + acc`` into ``column`` for tag ``(chunk, k)``."""
        self._enqueue(column, chunk, k,
                      self.ops.fma(x_vector, w_bits, acc_vector))

    def issue_gated(self, column: int, chunk: int, k: int, acc_vector) -> None:
        """Issue a padding slot: the accumulator passes through unchanged.

        Inner-dimension padding lanes (``n >= N`` in the last chunk) are
        operand-gated in the array -- the slot still occupies its pipeline
        stage (same timing, same issue accounting) but performs no
        arithmetic, so a signed-zero accumulator is not disturbed by a
        ``x * (+0)`` product the real gated lane never computes.
        """
        self._enqueue(column, chunk, k, acc_vector)

    def flush(self) -> None:
        """Drop all in-flight operations (between jobs)."""
        for pipe in self._pipes:
            pipe.clear()
        self._issued_this_cycle = [False] * self.config.height
