"""Golden functional models of the RedMulE computation.

RedMulE accumulates every output element ``Z[r, k]`` by walking the inner
dimension ``n`` strictly in increasing order, one fused multiply-add at a
time (chunks of ``H`` columns, then feedback -- see Fig. 2).  Because each
step is a single-rounded FP16 FMA, the result differs in general from a
float32 matmul rounded at the end; these golden models reproduce the exact
hardware result so the cycle-accurate engine can be verified bit-by-bit.

Three implementations are provided:

* :func:`matmul_hw_order_exact` -- scalar, bit-exact (integers all the way);
  the oracle for correctness, used on small matrices.
* :func:`matmul_hw_order_simd` -- vectorised *and* bit-exact: each FMA step
  is evaluated over the whole output matrix with the guarded SIMD kernel
  (:func:`repro.fp.simd.fma16_guarded_f64`), so it matches the scalar oracle
  bit for bit at array speed.  The default reference for workload-level
  checks.
* :func:`matmul_hw_order_fast` -- vectorised numpy implementation evaluating
  each FMA step in float64 with one rounding to binary16; it matches the
  exact model on all practical inputs (double-rounding corner cases
  excepted).

plus :func:`matmul_reference_fp32`, a float32 reference used to bound the
numerical error of FP16 accumulation in the accuracy examples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.fp.fma import fma16
from repro.fp.float16 import POS_ZERO_BITS
from repro.fp.formats import BinaryFormat, fma_bits
from repro.fp.simd import fma16_guarded_f64
from repro.fp.simd_formats import fma_guarded_f64_fmt
from repro.fp.vector import matrix_from_bits, matrix_to_bits


def matmul_hw_order_exact(
    x_bits: Sequence[Sequence[int]],
    w_bits: Sequence[Sequence[int]],
    acc_bits: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Bit-exact ``Z = acc + X . W`` with the hardware's FMA accumulation order.

    Parameters are matrices of 16-bit patterns (``x_bits`` is ``M x N``,
    ``w_bits`` is ``N x K``); the result is an ``M x K`` matrix of patterns.
    ``acc_bits`` (``M x K``) is the initial accumulator contents used by
    accumulation jobs (``Z += X . W``); it defaults to positive zeros.
    """
    m = len(x_bits)
    n = len(w_bits)
    if m == 0 or n == 0:
        raise ValueError("empty operands")
    if any(len(row) != n for row in x_bits):
        raise ValueError("X has inconsistent row lengths or wrong inner dimension")
    k = len(w_bits[0])
    if any(len(row) != k for row in w_bits):
        raise ValueError("W has inconsistent row lengths")
    if acc_bits is not None and (
        len(acc_bits) != m or any(len(row) != k for row in acc_bits)
    ):
        raise ValueError("accumulator matrix must be M x K")

    result: List[List[int]] = []
    for r in range(m):
        x_row = x_bits[r]
        out_row: List[int] = []
        for c in range(k):
            acc = acc_bits[r][c] if acc_bits is not None else POS_ZERO_BITS
            for i in range(n):
                acc = fma16(x_row[i], w_bits[i][c], acc)
            out_row.append(acc)
        result.append(out_row)
    return result


def matmul_hw_order_simd(x: np.ndarray, w: np.ndarray,
                         acc: Optional[np.ndarray] = None) -> np.ndarray:
    """Vectorised, bit-exact ``Z = acc + X . W`` in the hardware's FMA order.

    ``x`` and ``w`` must contain binary16-representable values (use
    :func:`repro.fp.vector.quantize_fp16`); each of the ``N`` accumulation
    steps is one guarded SIMD FMA over the whole ``M x K`` output, so the
    result is bit-identical to :func:`matmul_hw_order_exact` at numpy speed.
    The result is returned as float32 holding exact binary16 values.
    """
    x64 = np.asarray(x, dtype=np.float64)
    w64 = np.asarray(w, dtype=np.float64)
    if x64.ndim != 2 or w64.ndim != 2:
        raise ValueError("operands must be 2-D")
    if x64.shape[1] != w64.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: {x64.shape} . {w64.shape}"
        )
    m, n = x64.shape
    k = w64.shape[1]
    if acc is None:
        acc = np.zeros((m, k), dtype=np.float64)
    else:
        acc = np.asarray(acc, dtype=np.float64)
        if acc.shape != (m, k):
            raise ValueError(f"accumulator must be {m}x{k}, got {acc.shape}")
    for i in range(n):
        acc = fma16_guarded_f64(
            x64[:, i, None], w64[i, None, :], acc
        ).astype(np.float64)
    return acc.astype(np.float32)


def matmul_hw_order_simd_bits(
    x_bits: Sequence[Sequence[int]],
    w_bits: Sequence[Sequence[int]],
    acc_bits: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Bit-pattern wrapper around :func:`matmul_hw_order_simd`."""
    acc = matrix_from_bits(acc_bits) if acc_bits is not None else None
    return matrix_to_bits(
        matmul_hw_order_simd(matrix_from_bits(x_bits), matrix_from_bits(w_bits), acc)
    )


def matmul_hw_order_fast(x: np.ndarray, w: np.ndarray,
                         acc: Optional[np.ndarray] = None) -> np.ndarray:
    """Vectorised ``Z = acc + X . W`` with per-step FP16 rounding (hardware order).

    ``x`` and ``w`` must contain binary16-representable values (use
    :func:`repro.fp.vector.quantize_fp16`); the result is returned as float32
    holding exact binary16 values.  ``acc`` is the optional initial
    accumulator matrix (``M x K``) used by accumulation jobs.
    """
    x64 = np.asarray(x, dtype=np.float64)
    w64 = np.asarray(w, dtype=np.float64)
    if x64.ndim != 2 or w64.ndim != 2:
        raise ValueError("operands must be 2-D")
    if x64.shape[1] != w64.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: {x64.shape} . {w64.shape}"
        )
    m, n = x64.shape
    k = w64.shape[1]
    if acc is None:
        acc = np.zeros((m, k), dtype=np.float64)
    else:
        acc = np.asarray(acc, dtype=np.float64)
        if acc.shape != (m, k):
            raise ValueError(f"accumulator must be {m}x{k}, got {acc.shape}")
        acc = acc.copy()
    with np.errstate(over="ignore", invalid="ignore"):
        for i in range(n):
            raw = np.outer(x64[:, i], w64[i, :]) + acc
            acc = raw.astype(np.float16).astype(np.float64)
    return acc.astype(np.float32)


def matmul_hw_order_fast_bits(
    x_bits: Sequence[Sequence[int]],
    w_bits: Sequence[Sequence[int]],
) -> List[List[int]]:
    """Bit-pattern wrapper around :func:`matmul_hw_order_fast`."""
    x = matrix_from_bits(x_bits)
    w = matrix_from_bits(w_bits)
    return matrix_to_bits(matmul_hw_order_fast(x, w))


def matmul_hw_order_exact_fmt(
    x_bits: Sequence[Sequence[int]],
    w_bits: Sequence[Sequence[int]],
    fmt: BinaryFormat,
    acc_bits: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Bit-exact hardware-order matmul for any element format.

    Format-generic counterpart of :func:`matmul_hw_order_exact`: operands
    are matrices of ``fmt`` patterns and every accumulation step is one
    single-rounded ``fmt`` FMA in the hardware's strictly-increasing inner
    order.  The accumulation order per output element is independent of the
    packed-lane layout (lanes pack along K, each output element still walks
    ``n`` in order), so this is the oracle for every precision.
    """
    m = len(x_bits)
    n = len(w_bits)
    if m == 0 or n == 0:
        raise ValueError("empty operands")
    if any(len(row) != n for row in x_bits):
        raise ValueError("X has inconsistent row lengths or wrong inner dimension")
    k = len(w_bits[0])
    if any(len(row) != k for row in w_bits):
        raise ValueError("W has inconsistent row lengths")
    if acc_bits is not None and (
        len(acc_bits) != m or any(len(row) != k for row in acc_bits)
    ):
        raise ValueError("accumulator matrix must be M x K")

    result: List[List[int]] = []
    for r in range(m):
        x_row = x_bits[r]
        out_row: List[int] = []
        for c in range(k):
            acc = int(acc_bits[r][c]) if acc_bits is not None else 0
            for i in range(n):
                acc = fma_bits(int(x_row[i]), int(w_bits[i][c]), acc, fmt)
            out_row.append(acc)
        result.append(out_row)
    return result


def matmul_hw_order_simd_fmt(x: np.ndarray, w: np.ndarray, fmt: BinaryFormat,
                             acc: Optional[np.ndarray] = None) -> np.ndarray:
    """Vectorised, bit-exact hardware-order matmul for any element format.

    ``x`` and ``w`` must contain ``fmt``-representable values (use
    :func:`repro.fp.vector.quantize`); each of the ``N`` accumulation steps
    is one guarded SIMD FMA over the whole ``M x K`` output, bit-identical
    to :func:`matmul_hw_order_exact_fmt` at numpy speed.  Returns float64
    holding exact ``fmt`` values.
    """
    x64 = np.asarray(x, dtype=np.float64)
    w64 = np.asarray(w, dtype=np.float64)
    if x64.ndim != 2 or w64.ndim != 2:
        raise ValueError("operands must be 2-D")
    if x64.shape[1] != w64.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: {x64.shape} . {w64.shape}"
        )
    m, n = x64.shape
    k = w64.shape[1]
    if acc is None:
        acc = np.zeros((m, k), dtype=np.float64)
    else:
        acc = np.asarray(acc, dtype=np.float64)
        if acc.shape != (m, k):
            raise ValueError(f"accumulator must be {m}x{k}, got {acc.shape}")
    for i in range(n):
        acc = fma_guarded_f64_fmt(x64[:, i, None], w64[i, None, :], acc, fmt)
    return acc


def matmul_reference_fp32(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Plain float32 matrix multiplication (accuracy yard-stick)."""
    return (np.asarray(x, dtype=np.float32) @ np.asarray(w, dtype=np.float32))
