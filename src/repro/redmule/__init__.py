"""RedMulE: the Reduced-precision matrix Multiplication Engine.

This package is the paper's primary contribution: a parametric, tightly
coupled FP16 matrix-multiplication accelerator.  It contains

* the architectural configuration (:mod:`repro.redmule.config`),
* the job descriptor programmed by software (:mod:`repro.redmule.job`),
* structural models of the datapath building blocks -- pipelined FMA units,
  rows with feedback, the semi-systolic array, and the X/W/Z buffers
  (:mod:`repro.redmule.fma_unit`, :mod:`repro.redmule.row`,
  :mod:`repro.redmule.datapath`, :mod:`repro.redmule.buffers`),
* the streamer that schedules the single 288-bit memory port
  (:mod:`repro.redmule.streamer`),
* the tiling scheduler (:mod:`repro.redmule.scheduler`),
* the register file + controller (:mod:`repro.redmule.controller`),
* the cycle-accurate engine that ties everything together
  (:mod:`repro.redmule.engine`),
* trace compilation of the engine's cycle schedules -- record once, replay
  the data plane vectorized (:mod:`repro.redmule.trace`),
* a closed-form performance model validated against the engine
  (:mod:`repro.redmule.perf_model`), and
* golden functional references (:mod:`repro.redmule.functional`).
"""

from repro.redmule.config import RedMulEConfig
from repro.redmule.job import MatmulJob
from repro.redmule.fma_unit import PipelinedFma
from repro.redmule.row import FmaRow
from repro.redmule.datapath import Datapath
from repro.redmule.buffers import WLineBuffer, XBlockBuffer, ZStoreBuffer
from repro.redmule.streamer import Streamer, StreamerStats
from repro.redmule.scheduler import Tile, TileSchedule
from repro.redmule.controller import RedMulEController, REDMULE_REGISTERS
from repro.redmule.engine import RedMulE, RedMulEResult
from repro.redmule.perf_model import (
    PerfEstimate,
    ProgramEstimate,
    RedMulEPerfModel,
)
from repro.redmule.functional import (
    matmul_hw_order_exact,
    matmul_hw_order_fast,
    matmul_hw_order_simd,
    matmul_reference_fp32,
)
from repro.redmule.trace import (
    ScheduleTrace,
    TraceStore,
    replay_dataplane,
    reset_shared_trace_stores,
    shared_trace_store,
)
from repro.redmule.vector_ops import (
    VECTOR_OPS_BACKENDS,
    ExactSimdVectorOps,
    ExactVectorOps,
    FastVectorOps,
    TraceVectorOps,
    backend_schedule_compiled,
    make_vector_ops,
)

__all__ = [
    "Datapath",
    "ExactSimdVectorOps",
    "ExactVectorOps",
    "FastVectorOps",
    "FmaRow",
    "MatmulJob",
    "PerfEstimate",
    "PipelinedFma",
    "ProgramEstimate",
    "REDMULE_REGISTERS",
    "RedMulE",
    "RedMulEConfig",
    "RedMulEController",
    "RedMulEPerfModel",
    "RedMulEResult",
    "ScheduleTrace",
    "Streamer",
    "StreamerStats",
    "Tile",
    "TileSchedule",
    "TraceStore",
    "TraceVectorOps",
    "VECTOR_OPS_BACKENDS",
    "WLineBuffer",
    "XBlockBuffer",
    "ZStoreBuffer",
    "backend_schedule_compiled",
    "make_vector_ops",
    "matmul_hw_order_exact",
    "matmul_hw_order_fast",
    "matmul_hw_order_simd",
    "matmul_reference_fp32",
    "replay_dataplane",
    "reset_shared_trace_stores",
    "shared_trace_store",
]
