"""RedMulE streamer: the single wide memory port and its scheduling.

The streamer owns the accelerator's 9 x 32-bit (288-bit) connection to the
HCI shallow branch.  One wide access can be performed per cycle, shared
between three traffic classes:

* **W loads** -- one ``block_k``-element line every ``P+1`` cycles in steady
  state (highest priority: a missing W line stalls the whole array);
* **X loads** -- refills of the X block buffer, interleaved between W loads;
* **Z stores** -- draining of computed output lines, using left-over slots.

The engine enqueues :class:`StreamRequest` descriptors as it discovers the
demand; every simulated cycle the streamer picks the highest-priority pending
request, performs it through :meth:`repro.interco.hci.Hci.wide_line_cycle`
(which may stall it when the branch rotation favours the cores), and hands
the completed request back to the engine.  Lines travel as ``uint16``
pattern arrays end to end -- one bulk TCDM access per line, no per-element
marshalling at this boundary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Sequence

import numpy as np

from repro.interco.hci import Hci
from repro.redmule.config import RedMulEConfig

#: Traffic classes in priority order (lower value = higher priority).
PRIORITY_W = 0
PRIORITY_Y = 1
PRIORITY_X = 2
PRIORITY_Z = 3


@dataclass
class StreamRequest:
    """One wide memory access requested by the engine.

    For loads, ``n_elements`` FP16 values are read starting at ``addr`` and
    padded with zeros up to the configured line width; for stores,
    ``payload_bits`` (already truncated to the valid elements; a ``uint16``
    array or any 16-bit integer sequence) are written.  ``meta`` is an opaque
    tag the engine uses to route the completed data (e.g. ``("w", column,
    chunk)`` or ``("x", block, row)``).
    """

    kind: str  # "w", "x" or "z"
    addr: int
    n_elements: int
    write: bool = False
    payload_bits: Optional[Sequence[int]] = None
    meta: tuple = ()
    #: Filled in by the streamer for completed loads: a ``uint16`` pattern
    #: array padded to the line width.
    data_bits: Optional[np.ndarray] = None


@dataclass
class StreamerStats:
    """Port-level statistics collected over a job."""

    cycles: int = 0
    w_loads: int = 0
    x_loads: int = 0
    #: Z pre-loads performed for accumulation jobs (``Z += X . W``).
    y_loads: int = 0
    z_stores: int = 0
    stall_cycles: int = 0
    idle_cycles: int = 0

    @property
    def accesses(self) -> int:
        """Total wide accesses performed."""
        return self.w_loads + self.x_loads + self.y_loads + self.z_stores

    @property
    def port_utilisation(self) -> float:
        """Fraction of cycles in which the wide port moved data."""
        if self.cycles == 0:
            return 0.0
        return self.accesses / self.cycles


class Streamer:
    """Priority scheduler for the accelerator's wide memory port."""

    _PRIORITIES: Dict[str, int] = {
        "w": PRIORITY_W, "y": PRIORITY_Y, "x": PRIORITY_X, "z": PRIORITY_Z,
    }

    def __init__(self, config: RedMulEConfig, hci: Hci) -> None:
        self.config = config
        self.hci = hci
        if config.n_mem_ports > hci.config.n_wide_ports:
            raise ValueError(
                f"RedMulE needs {config.n_mem_ports} 32-bit ports but the HCI "
                f"shallow branch only has {hci.config.n_wide_ports}"
            )
        self._queues: Dict[str, Deque[StreamRequest]] = {
            "w": deque(),
            "y": deque(),
            "x": deque(),
            "z": deque(),
        }
        self.stats = StreamerStats()
        #: Optional schedule recorder notified of request enqueues and
        #: completions (``stream_enqueued`` / ``stream_completed``); see
        #: :class:`repro.redmule.trace.TileRecorder`.
        self.observer = None

    # -- queue management -----------------------------------------------------
    def enqueue(self, request: StreamRequest) -> None:
        """Queue a wide access for a future cycle."""
        if request.kind not in self._queues:
            raise ValueError(f"unknown stream kind {request.kind!r}")
        if request.write and request.payload_bits is None:
            raise ValueError("store request without payload")
        self._queues[request.kind].append(request)
        if self.observer is not None:
            self.observer.stream_enqueued(request)

    def snapshot_queue(self, kind: str) -> list:
        """The queued requests of ``kind``, oldest first (not removed)."""
        return list(self._queues[kind])

    def restore_queue(self, kind: str, requests: Sequence[StreamRequest]) -> None:
        """Replace the queue of ``kind`` wholesale (trace-replay boundary)."""
        queue = self._queues[kind]
        queue.clear()
        queue.extend(requests)

    def pending(self, kind: Optional[str] = None) -> int:
        """Number of queued requests (optionally of one kind)."""
        if kind is not None:
            return len(self._queues[kind])
        return sum(len(queue) for queue in self._queues.values())

    @property
    def busy(self) -> bool:
        """True while any request is still queued."""
        return self.pending() > 0

    # -- per-cycle operation -----------------------------------------------------
    def _select(self) -> Optional[StreamRequest]:
        for kind in ("w", "y", "x", "z"):
            if self._queues[kind]:
                return self._queues[kind][0]
        return None

    def cycle(self) -> Optional[StreamRequest]:
        """Advance one cycle; return the request completed this cycle, if any.

        Exactly one call per simulated cycle: it also advances the HCI wide
        port (so logarithmic-branch traffic registered for this cycle gets
        arbitrated even when the streamer is idle).
        """
        self.stats.cycles += 1
        request = self._select()
        if request is None:
            self.hci.wide_line_cycle(None)
            self.stats.idle_cycles += 1
            return None

        element_bytes = self.config.element_bytes
        if request.write:
            outcome = self.hci.wide_line_cycle(
                request.addr, write=True, line=request.payload_bits,
                element_bytes=element_bytes,
            )
        else:
            outcome = self.hci.wide_line_cycle(request.addr,
                                               n_elements=request.n_elements,
                                               element_bytes=element_bytes)
        if outcome is None:
            # The branch rotation stalled the wide port this cycle; retry.
            self.stats.stall_cycles += 1
            return None

        self._queues[request.kind].popleft()
        if request.write:
            self.stats.z_stores += 1
        else:
            request.data_bits = pad_line(outcome, self.config.elements_per_line)
            if request.kind == "w":
                self.stats.w_loads += 1
            elif request.kind == "y":
                self.stats.y_loads += 1
            else:
                self.stats.x_loads += 1
        if self.observer is not None:
            self.observer.stream_completed(request)
        return request

    def reset_stats(self) -> None:
        """Clear the port statistics (queues are left untouched)."""
        self.stats = StreamerStats()

    def flush(self) -> None:
        """Drop every queued request (recovery path after an aborted job).

        A job that dies mid-simulation (e.g. on the ``max_cycles`` watchdog)
        leaves its pending loads and stores queued; completing them into the
        *next* job's buffers would corrupt it, so the engine flushes the
        queues before re-raising.
        """
        for queue in self._queues.values():
            queue.clear()


def pad_line(line: np.ndarray, pad_to: int) -> np.ndarray:
    """Zero-pad a loaded pattern line up to the streamer line width."""
    if len(line) >= pad_to:
        return line
    padded = np.zeros(pad_to, dtype=line.dtype)
    padded[: len(line)] = line
    return padded
