"""Pipelined FP16 FMA unit (scalar structural model).

Each RedMulE processing element is an FPnew-derived FP16 FMA with ``P``
internal pipeline registers: an operation issued at cycle ``t`` produces its
result at cycle ``t + P + 1``.  The X operand of a unit is held constant while
the W operand changes every cycle, so the unit processes ``P + 1`` independent
partial products back-to-back without hazards.

This scalar model is used by the unit tests and by :class:`repro.redmule.row.
FmaRow` to validate the vectorised datapath implementation; the cycle-accurate
engine uses the column-vector pipelines in :mod:`repro.redmule.datapath` for
speed, which are tested to be cycle- and bit-equivalent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.fp.arith import BitExactFp16, Fp16Arithmetic


@dataclass
class FmaOperation:
    """An FMA operation in flight inside the pipeline."""

    #: 16-bit pattern of the multiplicand held in the X register.
    x: int
    #: 16-bit pattern of the streamed W operand.
    w: int
    #: 16-bit pattern of the accumulation input.
    acc: int
    #: Opaque tag propagated to the output (the engine uses (chunk, k)).
    tag: object = None
    #: Remaining cycles before the result is available.
    remaining: int = 0
    #: Result pattern, filled when the operation is issued (the arithmetic is
    #: evaluated eagerly; the pipeline only models latency).
    result: int = 0


class PipelinedFma:
    """One FP16 FMA unit with ``P`` pipeline registers (latency ``P + 1``).

    The unit accepts at most one issue per cycle and produces at most one
    result per cycle; the caller drives it with :meth:`issue` followed by
    :meth:`tick` every simulated cycle.
    """

    def __init__(self, pipeline_regs: int = 3,
                 arithmetic: Optional[Fp16Arithmetic] = None) -> None:
        if pipeline_regs < 0:
            raise ValueError("pipeline_regs must be >= 0")
        self.pipeline_regs = pipeline_regs
        self.latency = pipeline_regs + 1
        self.arithmetic = arithmetic if arithmetic is not None else BitExactFp16()
        self._pipeline: Deque[FmaOperation] = deque()
        #: Currently latched X operand (held for H*(P+1) cycles by the array).
        self.x_register: int = 0
        #: Number of operations issued.
        self.issued = 0
        #: Number of results retired.
        self.retired = 0
        self._issued_this_cycle = False

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while operations are still in flight."""
        return bool(self._pipeline)

    @property
    def occupancy(self) -> int:
        """Number of operations currently in the pipeline."""
        return len(self._pipeline)

    def load_x(self, x_bits: int) -> None:
        """Latch a new X operand (done once per ``H*(P+1)``-cycle slot).

        Accepts any 16-bit integer scalar (Python int or a numpy ``uint16``
        element picked out of a line array).
        """
        self.x_register = int(x_bits)

    def issue(self, w_bits: int, acc_bits: int, tag: object = None) -> None:
        """Issue ``x_register * w + acc`` into the pipeline.

        At most one issue per cycle is allowed; the engine guarantees this by
        construction and the model enforces it to catch scheduling bugs.
        Operands may be Python ints or numpy integer scalars.
        """
        if self._issued_this_cycle:
            raise RuntimeError("more than one issue in the same cycle")
        if len(self._pipeline) >= self.latency:
            raise RuntimeError("pipeline overflow: issuing faster than latency allows")
        w_bits = int(w_bits)
        acc_bits = int(acc_bits)
        result = self.arithmetic.fma(self.x_register, w_bits, acc_bits)
        self._pipeline.append(
            FmaOperation(
                x=self.x_register,
                w=w_bits,
                acc=acc_bits,
                tag=tag,
                remaining=self.latency,
                result=result,
            )
        )
        self.issued += 1
        self._issued_this_cycle = True

    def issue_gated(self, acc_bits: int, tag: object = None) -> None:
        """Issue an operand-gated padding slot: the accumulator passes through.

        Same pipeline occupancy and timing as :meth:`issue`, but no
        arithmetic is performed -- mirroring how the array gates lanes whose
        inner index lies beyond the matrix, so a signed-zero accumulator is
        not disturbed by a ``x * (+0)`` product.
        """
        if self._issued_this_cycle:
            raise RuntimeError("more than one issue in the same cycle")
        if len(self._pipeline) >= self.latency:
            raise RuntimeError("pipeline overflow: issuing faster than latency allows")
        acc_bits = int(acc_bits)
        self._pipeline.append(
            FmaOperation(
                x=self.x_register,
                w=0,
                acc=acc_bits,
                tag=tag,
                remaining=self.latency,
                result=acc_bits,
            )
        )
        self.issued += 1
        self._issued_this_cycle = True

    def tick(self) -> Optional[FmaOperation]:
        """Advance one cycle; return the operation completing this cycle, if any."""
        self._issued_this_cycle = False
        completed: Optional[FmaOperation] = None
        for op in self._pipeline:
            op.remaining -= 1
        if self._pipeline and self._pipeline[0].remaining == 0:
            completed = self._pipeline.popleft()
            self.retired += 1
        return completed

    def flush(self) -> None:
        """Drop all in-flight operations (used between jobs in tests)."""
        self._pipeline.clear()
        self._issued_this_cycle = False
