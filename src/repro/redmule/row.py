"""A row of ``H`` chained FMA units with accumulation feedback.

Within a RedMulE row (Fig. 2b of the paper) the ``H`` FMAs are wired so that
the partial product of FMA ``c`` feeds the accumulation input of FMA ``c+1``;
the output of the last FMA is fed back to the first one, letting the row walk
the inner (N) dimension in chunks of ``H`` while keeping ``H*(P+1)``
independent output elements in flight.

This scalar model computes one Z row of a tile end-to-end.  It is
intentionally a direct transliteration of the micro-architecture -- explicit
per-cycle issue schedule, per-unit pipelines, feedback register -- and is used
by the test-suite as a second, independently-written implementation to
cross-check both the vectorised datapath and the golden functional model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fp.arith import BitExactFp16, Fp16Arithmetic
from repro.fp.float16 import POS_ZERO_BITS
from repro.redmule.config import RedMulEConfig
from repro.redmule.fma_unit import PipelinedFma


class FmaRow:
    """One row of ``H`` pipelined FMAs with end-to-start feedback."""

    def __init__(self, config: RedMulEConfig,
                 arithmetic: Optional[Fp16Arithmetic] = None) -> None:
        self.config = config
        self.arithmetic = arithmetic if arithmetic is not None else BitExactFp16()
        self.units: List[PipelinedFma] = [
            PipelinedFma(config.pipeline_regs, self.arithmetic)
            for _ in range(config.height)
        ]
        #: Feedback storage: one partial accumulator per in-flight Z element.
        self.feedback: List[int] = [POS_ZERO_BITS] * config.block_k
        #: Cycles simulated by the last :meth:`compute_row` call.
        self.cycles = 0

    def compute_row(self, x_row: Sequence[int], w_block: Sequence[Sequence[int]],
                    n_chunks: Optional[int] = None) -> List[int]:
        """Compute ``block_k`` Z elements of one row, cycle by cycle.

        Parameters
        ----------
        x_row:
            The row of X operands (16-bit patterns), one per inner index
            ``n``.  Its length is padded with zeros up to ``n_chunks * H``.
            Any integer sequence works, including ``uint16`` line arrays.
        w_block:
            ``w_block[n][k]`` gives the W operand pattern for inner index
            ``n`` and output column ``k`` (``0 <= k < block_k``); rows beyond
            ``len(w_block)`` are treated as zero.  Rows may be lists or
            ``uint16`` line arrays.
        n_chunks:
            Number of H-wide chunks of the inner dimension to process
            (defaults to ``ceil(len(x_row) / H)``).

        Returns
        -------
        list[int]
            The ``block_k`` accumulated Z patterns for this row.
        """
        cfg = self.config
        height, latency, block_k = cfg.height, cfg.latency, cfg.block_k
        if n_chunks is None:
            n_chunks = -(-len(x_row) // height)
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")

        def x_at(n: int) -> int:
            return int(x_row[n]) if n < len(x_row) else POS_ZERO_BITS

        def w_at(n: int, k: int) -> int:
            if n >= len(w_block):
                return POS_ZERO_BITS
            return int(w_block[n][k])

        self.feedback = [POS_ZERO_BITS] * block_k
        for unit in self.units:
            unit.flush()

        issue_cycles = n_chunks * block_k
        total_cycles = issue_cycles + height * latency
        # Output accumulators of the previous column completing this cycle,
        # indexed by column; column c+1 consumes completed[c].
        for cycle in range(total_cycles):
            completed: List[Optional[object]] = [None] * height
            for col, unit in enumerate(self.units):
                done = unit.tick()
                if done is not None:
                    completed[col] = done

            # The last column's completion closes the loop: it either becomes
            # feedback for the next chunk or the final result.
            last_done = completed[height - 1]
            if last_done is not None:
                _, k = last_done.tag
                self.feedback[k] = last_done.result

            for col, unit in enumerate(self.units):
                slot = cycle - col * latency
                if slot < 0:
                    continue
                chunk, k = divmod(slot, block_k)
                if chunk >= n_chunks:
                    continue
                n = chunk * height + col
                if k == 0:
                    unit.load_x(x_at(n))
                if col == 0:
                    acc = self.feedback[k]
                else:
                    prev_done = completed[col - 1]
                    if prev_done is None or prev_done.tag != (chunk, k):
                        raise RuntimeError(
                            f"systolic timing violated at cycle {cycle}, "
                            f"column {col}, chunk {chunk}, k {k}"
                        )
                    acc = prev_done.result
                unit.issue(w_at(n, k), acc, tag=(chunk, k))

        self.cycles = total_cycles
        return list(self.feedback)
