"""A row of ``H`` chained FMA units with accumulation feedback.

Within a RedMulE row (Fig. 2b of the paper) the ``H`` FMAs are wired so that
the partial product of FMA ``c`` feeds the accumulation input of FMA ``c+1``;
the output of the last FMA is fed back to the first one, letting the row walk
the inner (N) dimension in chunks of ``H`` while keeping ``H*(P+1)``
slots in flight.

This scalar model computes one Z row of a tile end-to-end.  It is
intentionally a direct transliteration of the micro-architecture -- explicit
per-cycle issue schedule, per-unit pipelines, feedback register -- and is used
by the test-suite as a second, independently-written implementation to
cross-check both the vectorised datapath and the golden functional model.

For the packed 8-bit formats every column carries ``elements_per_slot``
SIMD sub-lanes (one :class:`~repro.redmule.fma_unit.PipelinedFma` each,
FPnew-style vectorial mode): a slot cycle issues one FMA per sub-lane, the
X operand broadcast across the lanes and the W/accumulator operands packed
along the output (K) dimension -- so a row computes
``elements_per_line = block_k * elements_per_slot`` Z elements per tile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fp.arith import BitExactFormat, Fp16Arithmetic
from repro.redmule.config import RedMulEConfig
from repro.redmule.fma_unit import PipelinedFma

#: Positive zero pattern (shared by every format).
_POS_ZERO = 0


class FmaRow:
    """One row of ``H`` chained FMA columns with end-to-start feedback."""

    def __init__(self, config: RedMulEConfig,
                 arithmetic: Optional[Fp16Arithmetic] = None) -> None:
        self.config = config
        if arithmetic is None:
            arithmetic = BitExactFormat(config.binary_format)
        self.arithmetic = arithmetic
        self.lanes = config.elements_per_slot
        #: units[column][lane]: the SIMD sub-lane FMAs of each column.
        self.units: List[List[PipelinedFma]] = [
            [PipelinedFma(config.pipeline_regs, self.arithmetic)
             for _ in range(self.lanes)]
            for _ in range(config.height)
        ]
        #: Feedback storage: one partial accumulator per in-flight Z element.
        self.feedback: List[int] = [_POS_ZERO] * config.elements_per_line
        #: Cycles simulated by the last :meth:`compute_row` call.
        self.cycles = 0

    def compute_row(self, x_row: Sequence[int], w_block: Sequence[Sequence[int]],
                    n_chunks: Optional[int] = None) -> List[int]:
        """Compute ``elements_per_line`` Z elements of one row, cycle by cycle.

        Parameters
        ----------
        x_row:
            The row of X operands (bit patterns), one per inner index
            ``n``.  Its length is padded with zeros up to ``n_chunks * H``.
            Any integer sequence works, including pattern line arrays.
        w_block:
            ``w_block[n][k]`` gives the W operand pattern for inner index
            ``n`` and output column ``k`` (``0 <= k < elements_per_line``);
            rows beyond ``len(w_block)`` are treated as zero.  Rows may be
            lists or pattern line arrays.
        n_chunks:
            Number of H-wide chunks of the inner dimension to process
            (defaults to ``ceil(len(x_row) / H)``).

        Returns
        -------
        list[int]
            The accumulated Z patterns for this row.
        """
        cfg = self.config
        height, latency, block_k = cfg.height, cfg.latency, cfg.block_k
        lanes = self.lanes
        epl = cfg.elements_per_line
        n_real = len(x_row)
        if n_chunks is None:
            n_chunks = -(-n_real // height)
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")

        def x_at(n: int) -> int:
            return int(x_row[n]) if n < len(x_row) else _POS_ZERO

        def w_at(n: int, k: int) -> int:
            if n >= len(w_block):
                return _POS_ZERO
            return int(w_block[n][k])

        self.feedback = [_POS_ZERO] * epl
        for column in self.units:
            for unit in column:
                unit.flush()

        issue_cycles = n_chunks * block_k
        total_cycles = issue_cycles + height * latency
        # Output accumulators of the previous column completing this cycle,
        # indexed by (column, lane); column c+1 consumes completed[c].
        for cycle in range(total_cycles):
            completed: List[List[Optional[object]]] = [
                [None] * lanes for _ in range(height)
            ]
            for col, column in enumerate(self.units):
                for lane, unit in enumerate(column):
                    done = unit.tick()
                    if done is not None:
                        completed[col][lane] = done

            # The last column's completion closes the loop: it either becomes
            # feedback for the next chunk or the final result.
            for last_done in completed[height - 1]:
                if last_done is not None:
                    _, k, tag_lane = last_done.tag
                    self.feedback[k * lanes + tag_lane] = last_done.result

            for col, column in enumerate(self.units):
                slot = cycle - col * latency
                if slot < 0:
                    continue
                chunk, k = divmod(slot, block_k)
                if chunk >= n_chunks:
                    continue
                n = chunk * height + col
                for lane, unit in enumerate(column):
                    if k == 0:
                        unit.load_x(x_at(n))
                    if col == 0:
                        acc = self.feedback[k * lanes + lane]
                    else:
                        prev_done = completed[col - 1][lane]
                        if prev_done is None or prev_done.tag != (chunk, k, lane):
                            raise RuntimeError(
                                f"systolic timing violated at cycle {cycle}, "
                                f"column {col}, lane {lane}, chunk {chunk}, "
                                f"k {k}"
                            )
                        acc = prev_done.result
                    if n < n_real:
                        unit.issue(w_at(n, k * lanes + lane), acc,
                                   tag=(chunk, k, lane))
                    else:
                        # Inner-dimension padding: operand-gated, exactly
                        # like the engine's Datapath.issue_gated (a x*(+0)
                        # product must not flip a -0 accumulator).
                        unit.issue_gated(acc, tag=(chunk, k, lane))

        self.cycles = total_cycles
        return list(self.feedback)
