"""Technology nodes and operating points.

Two implementation technologies appear in the paper:

* **22 nm** (GF22FDX-class): the main prototype, characterised at two
  operating points -- the peak-efficiency point (0.65 V, 476 MHz, 43.5 mW
  cluster power) and the peak-performance point (0.80 V, 666 MHz, 90.7 mW);
* **65 nm**: a port used in the state-of-the-art comparison (1.2 V, 200 MHz,
  89.1 mW, 3.85 mm2 cluster area).

The voltage/frequency/power numbers of those points are the calibration
anchors of the energy model; everything else (scaling between points,
breakdowns, sweeps) is derived.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperatingPoint:
    """A (voltage, frequency) operating point of the cluster."""

    name: str
    voltage_v: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.voltage_v <= 0 or self.frequency_hz <= 0:
            raise ValueError("voltage and frequency must be positive")

    @property
    def frequency_mhz(self) -> float:
        """Clock frequency in MHz."""
        return self.frequency_hz / 1e6


@dataclass(frozen=True)
class TechnologyParams:
    """A technology node with its calibrated reference numbers."""

    name: str
    #: Feature size in nanometres (identification only).
    node_nm: int
    #: Cluster area in mm2 (with the reference RedMulE instance).
    cluster_area_mm2: float
    #: RedMulE area in mm2 (reference instance H=4, L=8, P=3).
    redmule_area_mm2: float
    #: Reference operating point used for power calibration.
    reference_point: OperatingPoint
    #: Cluster power at the reference point with RedMulE running (mW).
    cluster_power_accel_mw: float
    #: Cluster power at the reference point with the 8 cores running the
    #: software matmul and RedMulE clock-gated (mW).
    cluster_power_sw_mw: float
    #: Dynamic fraction of the accelerator-mode power at the reference point
    #: (the rest is leakage); used to scale to other operating points.
    dynamic_fraction: float = 0.96


#: 22 nm peak-efficiency operating point (Section III-A).
OP_22NM_EFFICIENCY = OperatingPoint("22nm-0.65V", voltage_v=0.65,
                                    frequency_hz=476e6)
#: 22 nm peak-performance operating point (Section III-A).
OP_22NM_PERFORMANCE = OperatingPoint("22nm-0.80V", voltage_v=0.80,
                                     frequency_hz=666e6)
#: 65 nm nominal operating point (Table I).
OP_65NM_NOMINAL = OperatingPoint("65nm-1.2V", voltage_v=1.2,
                                 frequency_hz=200e6)

#: 22 nm prototype.  The software-mode power (9.2 mW) is back-derived from the
#: paper's 22x speedup and 4.65x energy-efficiency gain: with efficiency =
#: throughput / power, eff_hw / eff_sw = speedup * P_sw / P_hw, so
#: P_sw = 4.65 / 22 * 43.5 mW = 9.2 mW -- consistent with ~1.1 mW per RI5CY
#: core at 0.65 V / 476 MHz.
TECH_22NM = TechnologyParams(
    name="GF22FDX",
    node_nm=22,
    cluster_area_mm2=0.5,
    redmule_area_mm2=0.07,
    reference_point=OP_22NM_EFFICIENCY,
    cluster_power_accel_mw=43.5,
    cluster_power_sw_mw=9.2,
    dynamic_fraction=0.961,
)

#: 65 nm port.  Only one operating point is published (Table I); the
#: software-mode power keeps the same ratio to the accelerator-mode power as
#: in 22 nm.
TECH_65NM = TechnologyParams(
    name="65nm",
    node_nm=65,
    cluster_area_mm2=3.85,
    redmule_area_mm2=0.07 * (3.85 / 0.5),
    reference_point=OP_65NM_NOMINAL,
    cluster_power_accel_mw=89.1,
    cluster_power_sw_mw=89.1 * 9.2 / 43.5,
    dynamic_fraction=0.90,
)


def scale_power(reference_mw: float, dynamic_fraction: float,
                reference: OperatingPoint, target: OperatingPoint) -> float:
    """Scale a power number between operating points of the same technology.

    Dynamic power scales with ``f * V^2`` and leakage (the remaining
    fraction) approximately with ``V``.
    """
    voltage_ratio = target.voltage_v / reference.voltage_v
    frequency_ratio = target.frequency_hz / reference.frequency_hz
    dynamic = reference_mw * dynamic_fraction * frequency_ratio * voltage_ratio ** 2
    static = reference_mw * (1.0 - dynamic_fraction) * voltage_ratio
    return dynamic + static
