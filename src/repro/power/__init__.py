"""Area, power and energy models.

The paper's silicon results (Synopsys DC synthesis + Cadence Innovus P&R in
22 nm, plus a 65 nm port) cannot be re-derived in Python, so this package
provides analytical models calibrated against the published numbers:

* :mod:`repro.power.technology` -- technology nodes and operating points
  (22 nm @ 0.65 V / 476 MHz and 0.8 V / 666 MHz, 65 nm @ 1.2 V / 200 MHz);
* :mod:`repro.power.area` -- component-level area model of RedMulE and of the
  cluster, parametric in (H, L, P), calibrated to 0.07 mm2 / 0.5 mm2;
* :mod:`repro.power.energy` -- cluster power in accelerator and software mode,
  energy per MAC, GFLOPS/W;
* :mod:`repro.power.breakdown` -- named breakdown containers used by the
  Fig. 3a / 3b reproductions.

Every calibration constant is documented next to its definition and traced
back to the paper value it reproduces in EXPERIMENTS.md.
"""

from repro.power.technology import (
    OperatingPoint,
    TechnologyParams,
    TECH_22NM,
    TECH_65NM,
    OP_22NM_EFFICIENCY,
    OP_22NM_PERFORMANCE,
    OP_65NM_NOMINAL,
)
from repro.power.breakdown import Breakdown, BreakdownItem
from repro.power.area import AreaModel, ClusterAreaModel
from repro.power.energy import EnergyModel

__all__ = [
    "AreaModel",
    "Breakdown",
    "BreakdownItem",
    "ClusterAreaModel",
    "EnergyModel",
    "OP_22NM_EFFICIENCY",
    "OP_22NM_PERFORMANCE",
    "OP_65NM_NOMINAL",
    "OperatingPoint",
    "TECH_22NM",
    "TECH_65NM",
    "TechnologyParams",
]
