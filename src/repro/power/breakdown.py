"""Named breakdown containers (area and power).

Fig. 3a and Fig. 3b of the paper show the area and power breakdown of the
standalone accelerator as pie charts.  The exact per-component percentages are
not printed in the paper text, so the models in :mod:`repro.power.area` and
:mod:`repro.power.energy` compute them from component-level constants that are
calibrated to the published totals (0.07 mm2; 69 % of 43.5 mW) and to the
qualitative statement that the FMA datapath dominates both.  This module only
provides the generic container plus text rendering used by the benchmarks and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class BreakdownItem:
    """One component of a breakdown."""

    name: str
    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"breakdown component {self.name!r} is negative")


class Breakdown:
    """A named collection of components summing to a total."""

    def __init__(self, title: str, unit: str,
                 items: Iterable[Tuple[str, float]]) -> None:
        self.title = title
        self.unit = unit
        self.items: List[BreakdownItem] = [
            BreakdownItem(name, float(value)) for name, value in items
        ]
        if not self.items:
            raise ValueError("a breakdown needs at least one component")

    @property
    def total(self) -> float:
        """Sum of all components."""
        return sum(item.value for item in self.items)

    def share(self, name: str) -> float:
        """Fraction of the total contributed by ``name``."""
        total = self.total
        if total == 0:
            return 0.0
        return self.value(name) / total

    def value(self, name: str) -> float:
        """Absolute value of component ``name``."""
        for item in self.items:
            if item.name == name:
                return item.value
        raise KeyError(name)

    def names(self) -> List[str]:
        """Component names in declaration order."""
        return [item.name for item in self.items]

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """Rows of ``(name, value, share)`` for tabular rendering."""
        total = self.total
        return [
            (item.name, item.value, item.value / total if total else 0.0)
            for item in self.items
        ]

    def render(self) -> str:
        """Multi-line text table of the breakdown."""
        lines = [f"{self.title} (total {self.total:.4g} {self.unit})"]
        width = max(len(item.name) for item in self.items)
        for name, value, share in self.as_rows():
            lines.append(f"  {name:<{width}}  {value:10.4g} {self.unit}  "
                         f"{100.0 * share:5.1f}%")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Breakdown({self.title!r}, total={self.total:.4g} {self.unit})"
