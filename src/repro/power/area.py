"""Component-level area model of RedMulE and the PULP cluster.

The model is parametric in the accelerator geometry (H, L, P) so it can
reproduce the area sweep of Fig. 4b, and it is calibrated so the reference
instance (H=4, L=8, P=3) matches the published numbers in 22 nm:

* RedMulE standalone: 0.07 mm2 (14 % of the cluster);
* full cluster: 0.5 mm2;
* 256 FMAs (H=8, L=32) make RedMulE comparable to the whole cluster and
  512 FMAs (H=16, L=32) twice as large (Section III-A, "Parametric area
  swipe");
* growing H by one adds ``P+1`` pipeline registers per row and two extra
  32-bit memory ports.

Component constants (22 nm, mm2):

=====================  ==========  ==================================================
constant               value       rationale
=====================  ==========  ==================================================
``FMA_AREA``           0.0016      one FP16 FMA datapath (FPnew transprecision slice)
``PIPE_REG_AREA``      0.00008     one pipeline register stage of an FMA (3 x 16 bit)
``BUFFER_BIT_AREA``    8.6e-7      one bit of SCM (latch-based) operand buffer
``PORT_AREA``          0.00055     one 32-bit streamer port (address gen + mux slice)
``CONTROL_AREA``       0.0025      scheduler + controller + register file
=====================  ==========  ==================================================

With these constants the reference instance totals 0.071 mm2, 256 FMAs land
at 0.52 mm2 (comparable to the 0.5 mm2 cluster) and 512 FMAs at 1.03 mm2
(about twice the cluster), matching the paper's statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.power.breakdown import Breakdown
from repro.power.technology import TECH_22NM, TechnologyParams
from repro.redmule.config import RedMulEConfig

#: Area of one FP16 FMA datapath slice in 22 nm (mm2).
FMA_AREA = 0.0016
#: Area of one internal pipeline-register stage of an FMA (mm2).
PIPE_REG_AREA = 0.00008
#: Area per storage bit of the latch-based operand buffers (mm2).
BUFFER_BIT_AREA = 8.6e-7
#: Area per 32-bit streamer memory port (mm2).
PORT_AREA = 0.00055
#: Area of the scheduler, controller and register file (mm2).
CONTROL_AREA = 0.0025

#: Cluster components other than RedMulE, 22 nm (mm2).  Calibrated so the
#: total cluster area is 0.5 mm2 with the 0.07 mm2 reference accelerator.
CLUSTER_COMPONENT_AREAS: Dict[str, float] = {
    "cores (8x RI5CY)": 0.185,
    "TCDM banks": 0.160,
    "shared I-cache": 0.045,
    "HCI + peripheral interconnect": 0.030,
    "DMA + event unit": 0.010,
}

#: TCDM banks of the reference cluster (16 x 8 KiB word-interleaved SRAMs).
REFERENCE_TCDM_BANKS = 16

#: Area of one TCDM bank in 22 nm (mm2): the calibrated 0.160 mm2 memory
#: slice divided over the 16 reference banks.  The design-space explorer
#: scales the cluster area linearly in the bank count through this constant.
TCDM_BANK_AREA = CLUSTER_COMPONENT_AREAS["TCDM banks"] / REFERENCE_TCDM_BANKS


@dataclass
class AreaModel:
    """Area of one RedMulE instance, parametric in (H, L, P)."""

    config: RedMulEConfig
    technology: TechnologyParams = TECH_22NM

    # ------------------------------------------------------------------
    def _scale(self) -> float:
        """Area scale factor of the selected technology relative to 22 nm."""
        return self.technology.cluster_area_mm2 / TECH_22NM.cluster_area_mm2

    def datapath_area(self) -> float:
        """FMA units plus their internal pipeline registers."""
        per_fma = FMA_AREA + self.config.pipeline_regs * PIPE_REG_AREA
        return self._scale() * self.config.n_fma * per_fma

    def buffer_area(self) -> float:
        """X, W and Z operand buffers."""
        return self._scale() * self.config.total_buffer_bits * BUFFER_BIT_AREA

    def streamer_area(self) -> float:
        """Streamer: one slice per 32-bit memory port."""
        return self._scale() * self.config.n_mem_ports * PORT_AREA

    def control_area(self) -> float:
        """Scheduler, controller and register file."""
        return self._scale() * CONTROL_AREA

    def total(self) -> float:
        """Total accelerator area in mm2."""
        return (
            self.datapath_area()
            + self.buffer_area()
            + self.streamer_area()
            + self.control_area()
        )

    def breakdown(self) -> Breakdown:
        """Fig. 3a: area breakdown of the standalone accelerator."""
        return Breakdown(
            title=f"RedMulE area breakdown ({self.config.describe()}, "
                  f"{self.technology.name})",
            unit="mm2",
            items=[
                ("datapath (FMAs)", self.datapath_area()),
                ("X/W/Z buffers", self.buffer_area()),
                ("streamer", self.streamer_area()),
                ("controller + scheduler", self.control_area()),
            ],
        )

    # -- sweeps ------------------------------------------------------------
    @classmethod
    def sweep(cls, shapes: List[Tuple[int, int]], pipeline_regs: int = 3,
              technology: TechnologyParams = TECH_22NM) -> List[Dict[str, float]]:
        """Area sweep over (H, L) shapes at fixed P (Fig. 4b).

        Returns one record per shape with the total area, the number of FMAs
        and the number of memory ports (which grows with H).
        """
        records = []
        for height, length in shapes:
            config = RedMulEConfig(height=height, length=length,
                                   pipeline_regs=pipeline_regs)
            model = cls(config, technology)
            records.append(
                {
                    "H": height,
                    "L": length,
                    "P": pipeline_regs,
                    "n_fma": config.n_fma,
                    "n_mem_ports": config.n_mem_ports,
                    "area_mm2": model.total(),
                    "area_vs_cluster": model.total()
                    / technology.cluster_area_mm2,
                }
            )
        return records


@dataclass
class ClusterAreaModel:
    """Area of the full PULP cluster hosting a RedMulE instance.

    ``tcdm_banks`` sizes the shared memory: the reference cluster carries
    :data:`REFERENCE_TCDM_BANKS` banks, and the design-space explorer sweeps
    the count to trade memory area against banking-conflict headroom.
    """

    config: RedMulEConfig
    technology: TechnologyParams = TECH_22NM
    tcdm_banks: int = REFERENCE_TCDM_BANKS

    def __post_init__(self) -> None:
        if self.tcdm_banks < 1:
            raise ValueError("the cluster needs at least one TCDM bank")

    def redmule_area(self) -> float:
        """Accelerator area."""
        return AreaModel(self.config, self.technology).total()

    def _component_areas(self) -> Dict[str, float]:
        """Non-accelerator component areas at the selected bank count."""
        areas = dict(CLUSTER_COMPONENT_AREAS)
        areas["TCDM banks"] = self.tcdm_banks * TCDM_BANK_AREA
        return areas

    def total(self) -> float:
        """Total cluster area in mm2."""
        scale = self.technology.cluster_area_mm2 / TECH_22NM.cluster_area_mm2
        others = sum(self._component_areas().values()) * scale
        return others + self.redmule_area()

    def redmule_share(self) -> float:
        """Fraction of the cluster occupied by RedMulE (14 % in the paper)."""
        return self.redmule_area() / self.total()

    def breakdown(self) -> Breakdown:
        """Cluster-level area breakdown."""
        scale = self.technology.cluster_area_mm2 / TECH_22NM.cluster_area_mm2
        items = [(name, area * scale)
                 for name, area in self._component_areas().items()]
        items.append(("RedMulE", self.redmule_area()))
        return Breakdown(
            title=f"PULP cluster area breakdown ({self.technology.name})",
            unit="mm2",
            items=items,
        )
