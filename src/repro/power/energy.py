"""Cluster power, energy-per-MAC and energy-efficiency models.

Calibration anchors (22 nm, Section III-A of the paper):

* accelerator mode, 0.65 V / 476 MHz: 43.5 mW total cluster power, of which
  RedMulE contributes 69 % and TCDM + HCI 17.1 %;
* accelerator mode, 0.80 V / 666 MHz: 90.7 mW;
* peak energy efficiency 688 GFLOPS/W (0.65 V) and 462 GFLOPS/W (0.80 V);
* software mode (8 cores busy, RedMulE clock-gated): 9.2 mW at 0.65 V,
  back-derived from the published 22x speedup and 4.65x efficiency gain;
* 65 nm port: 89.1 mW at 1.2 V / 200 MHz.

The model scales these anchors across operating points with the usual
``f * V^2`` dynamic / ``V`` leakage split and across utilisation linearly in
the switching component of the accelerator (a mostly idle array still burns
its clock tree and leakage, which is why energy per MAC rises steeply for
small matrices -- Fig. 3c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.power.area import AreaModel
from repro.power.breakdown import Breakdown
from repro.power.technology import (
    OperatingPoint,
    TECH_22NM,
    TechnologyParams,
    scale_power,
)
from repro.redmule.config import RedMulEConfig

#: Share of the accelerator-mode cluster power burnt by RedMulE itself
#: (Section III-A: "the RedMulE contribution dominates it for 69%").
REDMULE_POWER_SHARE = 0.69
#: Share burnt by the TCDM banks and the HCI (17.1 % in the paper).
MEMORY_POWER_SHARE = 0.171
#: Remaining share: idle cores, instruction cache, DMA, peripherals.
OTHER_POWER_SHARE = 1.0 - REDMULE_POWER_SHARE - MEMORY_POWER_SHARE

#: Fraction of the RedMulE + memory power that scales with activity
#: (switching); the rest is clock tree and leakage that burns regardless of
#: utilisation.
ACTIVITY_SCALED_FRACTION = 0.8

#: Internal power split of the standalone accelerator (Fig. 3b).  The FMA
#: datapath dominates, followed by the operand buffers and the streamer; the
#: absolute numbers are obtained by applying these shares to the 69 % slice of
#: the calibrated cluster power.
REDMULE_INTERNAL_POWER_SHARES = {
    "datapath (FMAs)": 0.66,
    "X/W/Z buffers": 0.16,
    "streamer": 0.13,
    "controller + scheduler": 0.05,
}


@dataclass
class EnergyModel:
    """Power / energy / efficiency of the cluster running matmul workloads."""

    config: RedMulEConfig
    technology: TechnologyParams = TECH_22NM

    # -- cluster power ------------------------------------------------------
    def cluster_power_accel_w(self, point: Optional[OperatingPoint] = None,
                              utilisation: float = 1.0) -> float:
        """Cluster power (W) with RedMulE running at the given utilisation."""
        if not 0.0 <= utilisation <= 1.0:
            raise ValueError("utilisation must be within [0, 1]")
        point = point or self.technology.reference_point
        reference_mw = self.technology.cluster_power_accel_mw
        total_mw = scale_power(reference_mw, self.technology.dynamic_fraction,
                               self.technology.reference_point, point)
        # Split into an activity-dependent part (datapath and memory
        # switching) and a constant part (clock tree, leakage, idle cores).
        active_share = (REDMULE_POWER_SHARE + MEMORY_POWER_SHARE)
        scaled = total_mw * active_share * ACTIVITY_SCALED_FRACTION
        constant = total_mw - scaled
        # Scale the instance size relative to the reference 32-FMA design so
        # the model remains meaningful in the (H, L) design space.
        size_ratio = self.config.n_fma / 32.0
        return (constant + scaled * utilisation * size_ratio) / 1e3

    def cluster_power_sw_w(self, point: Optional[OperatingPoint] = None) -> float:
        """Cluster power (W) with the 8 cores running the software matmul."""
        point = point or self.technology.reference_point
        return scale_power(self.technology.cluster_power_sw_mw,
                           self.technology.dynamic_fraction,
                           self.technology.reference_point, point) / 1e3

    def redmule_power_w(self, point: Optional[OperatingPoint] = None,
                        utilisation: float = 1.0) -> float:
        """Power of the accelerator alone (its 69 % share of the cluster)."""
        return REDMULE_POWER_SHARE * self.cluster_power_accel_w(point, utilisation)

    # -- breakdowns -----------------------------------------------------------
    def cluster_power_breakdown(self,
                                point: Optional[OperatingPoint] = None) -> Breakdown:
        """Cluster-level power breakdown at full utilisation."""
        total_w = self.cluster_power_accel_w(point)
        return Breakdown(
            title=f"Cluster power breakdown ({self.technology.name})",
            unit="mW",
            items=[
                ("RedMulE", 1e3 * total_w * REDMULE_POWER_SHARE),
                ("TCDM + HCI", 1e3 * total_w * MEMORY_POWER_SHARE),
                ("cores (idle) + I-cache + DMA + peripherals",
                 1e3 * total_w * OTHER_POWER_SHARE),
            ],
        )

    def redmule_power_breakdown(self,
                                point: Optional[OperatingPoint] = None) -> Breakdown:
        """Fig. 3b: power breakdown of the standalone accelerator."""
        redmule_mw = 1e3 * self.redmule_power_w(point)
        return Breakdown(
            title=f"RedMulE power breakdown ({self.technology.name})",
            unit="mW",
            items=[
                (name, share * redmule_mw)
                for name, share in REDMULE_INTERNAL_POWER_SHARES.items()
            ],
        )

    # -- derived metrics -----------------------------------------------------------
    def throughput_gflops(self, point: Optional[OperatingPoint] = None,
                          utilisation: float = 1.0) -> float:
        """Cluster throughput in GFLOPS at the given point and utilisation."""
        point = point or self.technology.reference_point
        macs_per_s = utilisation * self.config.ideal_macs_per_cycle * point.frequency_hz
        return 2.0 * macs_per_s / 1e9

    def energy_per_mac_pj(self, utilisation: float,
                          point: Optional[OperatingPoint] = None) -> float:
        """Cluster energy per useful MAC operation in picojoules (Fig. 3c)."""
        if utilisation <= 0:
            raise ValueError("utilisation must be positive to compute energy/MAC")
        point = point or self.technology.reference_point
        power_w = self.cluster_power_accel_w(point, utilisation)
        macs_per_s = utilisation * self.config.ideal_macs_per_cycle * point.frequency_hz
        return power_w / macs_per_s * 1e12

    def efficiency_gflops_per_w(self, utilisation: float = 1.0,
                                point: Optional[OperatingPoint] = None) -> float:
        """Cluster energy efficiency in 16-bit GFLOPS/W."""
        point = point or self.technology.reference_point
        power_w = self.cluster_power_accel_w(point, utilisation)
        return self.throughput_gflops(point, utilisation) / power_w

    def sw_efficiency_gflops_per_w(self, sw_macs_per_cycle: float,
                                   point: Optional[OperatingPoint] = None) -> float:
        """Energy efficiency of the software baseline in GFLOPS/W."""
        point = point or self.technology.reference_point
        power_w = self.cluster_power_sw_w(point)
        gflops = 2.0 * sw_macs_per_cycle * point.frequency_hz / 1e9
        return gflops / power_w

    def area_model(self) -> AreaModel:
        """Companion area model for the same instance and technology."""
        return AreaModel(self.config, self.technology)
