"""Work distribution of the software matmul across cluster cores.

The baseline parallelises the matmul over the output rows: each of the
``n_cores`` cores processes ``ceil(M / n_cores)`` rows, and the cores meet at
a hardware barrier (the cluster event unit) at the end.  The model charges:

* the fork cost of waking the worker cores from the event unit,
* the per-core kernel time for its share of rows (the slowest core, i.e. the
  one with the most rows, determines the parallel runtime),
* the barrier cost at the join.

With row-wise distribution the speedup saturates at ``min(M, n_cores)``; in
particular the batch-1 auto-encoder backward pass (``M = 1`` for some GEMMs)
leaves most cores idle, which is visible in the Fig. 4c reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sw.kernel import KernelCostModel


@dataclass(frozen=True)
class ParallelParameters:
    """Multi-core execution parameters."""

    #: Number of worker cores.
    n_cores: int = 8
    #: Cycles to wake the workers and dispatch the kernel arguments.
    fork_cycles: float = 100.0
    #: Cycles for the final hardware barrier (event-unit based).
    barrier_cycles: float = 40.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")


class ParallelizationModel:
    """Row-parallel execution of the matmul kernel on ``n_cores`` cores."""

    def __init__(
        self,
        kernel: KernelCostModel = None,
        params: ParallelParameters = ParallelParameters(),
    ) -> None:
        self.kernel = kernel if kernel is not None else KernelCostModel()
        self.params = params

    def rows_per_core(self, m: int) -> int:
        """Rows assigned to the most loaded core."""
        return -(-m // self.params.n_cores)

    def active_cores(self, m: int) -> int:
        """Cores that actually receive work."""
        return min(self.params.n_cores, -(-m // self.rows_per_core(m)))

    def matmul_cycles(self, m: int, n: int, k: int) -> float:
        """Parallel cycles for an ``m x n x k`` matmul on the cluster."""
        if m <= 0 or n <= 0 or k <= 0:
            raise ValueError("matrix dimensions must be positive")
        worst_rows = self.rows_per_core(m)
        worker = self.kernel.matmul_cycles(worst_rows, n, k)
        return self.params.fork_cycles + worker + self.params.barrier_cycles

    def macs_per_cycle(self, m: int, n: int, k: int) -> float:
        """Cluster-level MAC throughput for the given shape."""
        return (m * n * k) / self.matmul_cycles(m, n, k)

    @property
    def peak_macs_per_cycle(self) -> float:
        """Asymptotic cluster throughput (all cores busy, no overheads)."""
        return self.params.n_cores / self.kernel.params.cycles_per_mac
