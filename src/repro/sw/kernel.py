"""Per-core cost model of the software FP16 matmul kernel.

The software baseline in the paper is a parallel FP16 matmul running on the
cluster's 8 RI5CY cores, using the shared FPnew FPUs (one FPU per two cores
in the 8-core configuration).  The paper only reports the baseline's
*relative* performance -- RedMulE is up to 22x faster -- so the kernel model
charges cycles per inner-loop iteration with parameters chosen to reproduce
that calibration point while keeping each contribution physically meaningful:

* one X load and one W load per MAC (the W matrix is walked column-wise, so
  its access needs explicit address arithmetic: ``w_stride_penalty``);
* one FP16 FMA issue per MAC, plus an average structural-hazard penalty
  because two cores share one FPU;
* amortised loop/pointer bookkeeping per iteration;
* per-output and per-call overheads (accumulator setup, result store,
  function prologue) that dominate for tiny matrices.

The defaults give ~5.5 cycles per MAC per core in steady state, i.e. about
1.44 MAC/cycle for the whole 8-core cluster, which reproduces the ~22x gap
to RedMulE's 31.6 MAC/cycle reported in Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelParameters:
    """Tunable instruction costs of the inner loop (cycles)."""

    #: Elements processed per inner-loop iteration (1 = scalar FP16 FMA).
    simd_width: int = 1
    #: Cycles per TCDM load feeding the FMA (single-cycle, conflict-free).
    load_cycles: float = 1.0
    #: Loads per iteration (one X element + one W element).
    loads_per_step: int = 2
    #: Extra address-generation cycles for the column-wise (strided) W access.
    w_stride_penalty: float = 1.0
    #: Cycles per FP16 FMA issue.
    fma_cycles: float = 1.0
    #: Average extra cycles per FMA due to the shared-FPU structural hazard
    #: (two cores per FPU in the 8-core cluster).
    fpu_contention_cycles: float = 1.0
    #: Loop/pointer bookkeeping cycles per iteration after unrolling.
    loop_overhead_cycles: float = 0.5
    #: Cycles to set up one (row, column) accumulator: init, final store,
    #: pointer setup.
    per_output_overhead: float = 10.0
    #: Cycles per kernel call: prologue/epilogue, argument marshalling.
    per_call_overhead: float = 60.0

    @property
    def cycles_per_step(self) -> float:
        """Cycles for one inner-loop iteration."""
        return (
            self.loads_per_step * self.load_cycles
            + self.w_stride_penalty
            + self.fma_cycles
            + self.fpu_contention_cycles
            + self.loop_overhead_cycles
        )

    @property
    def cycles_per_mac(self) -> float:
        """Asymptotic cycles per scalar MAC on one core."""
        return self.cycles_per_step / self.simd_width


class KernelCostModel:
    """Cycle cost of the single-core FP16 matmul kernel."""

    def __init__(self, params: KernelParameters = KernelParameters()) -> None:
        self.params = params

    def inner_loop_cycles(self, n: int) -> float:
        """Cycles to accumulate one output element over an inner dimension ``n``."""
        if n <= 0:
            raise ValueError("inner dimension must be positive")
        params = self.params
        steps = -(-n // params.simd_width)
        return steps * params.cycles_per_step + params.per_output_overhead

    def matmul_cycles(self, m: int, n: int, k: int) -> float:
        """Cycles for a full ``m x n x k`` matmul on a single core."""
        if m <= 0 or n <= 0 or k <= 0:
            raise ValueError("matrix dimensions must be positive")
        outputs = m * k
        return outputs * self.inner_loop_cycles(n) + self.params.per_call_overhead

    def macs_per_cycle(self, m: int, n: int, k: int) -> float:
        """Achieved single-core MAC throughput for the given shape."""
        return (m * n * k) / self.matmul_cycles(m, n, k)
