"""Software baseline facade.

:class:`SoftwareBaseline` exposes the same "run a matmul, get cycles"
interface as the RedMulE engine / performance model, so experiments can sweep
both sides symmetrically.  Functionally the software kernel computes exactly
the same FP16 result as the accelerator (same FMA, same accumulation order),
so the facade can optionally return the numerical result as well via the
golden model -- useful for the end-to-end workload examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.redmule.functional import matmul_hw_order_simd
from repro.sw.kernel import KernelCostModel, KernelParameters
from repro.sw.parallel import ParallelizationModel, ParallelParameters


@dataclass(frozen=True)
class SoftwareResult:
    """Outcome of a software matmul execution."""

    m: int
    n: int
    k: int
    #: Estimated cluster cycles.
    cycles: float
    #: Number of cores used.
    n_cores: int

    @property
    def total_macs(self) -> int:
        """Useful MACs of the job."""
        return self.m * self.n * self.k

    @property
    def macs_per_cycle(self) -> float:
        """Cluster-level MAC throughput."""
        if self.cycles == 0:
            return 0.0
        return self.total_macs / self.cycles

    def runtime_s(self, frequency_hz: float) -> float:
        """Wall-clock runtime at a given clock frequency."""
        return self.cycles / frequency_hz

    def throughput_gflops(self, frequency_hz: float) -> float:
        """Throughput in GFLOPS at a given clock frequency."""
        return 2.0 * self.total_macs / self.runtime_s(frequency_hz) / 1e9


class SoftwareBaseline:
    """Parallel software FP16 matmul on the cluster cores."""

    def __init__(
        self,
        n_cores: int = 8,
        kernel_params: Optional[KernelParameters] = None,
        parallel_params: Optional[ParallelParameters] = None,
    ) -> None:
        kernel = KernelCostModel(kernel_params or KernelParameters())
        params = parallel_params or ParallelParameters(n_cores=n_cores)
        if params.n_cores != n_cores:
            params = ParallelParameters(
                n_cores=n_cores,
                fork_cycles=params.fork_cycles,
                barrier_cycles=params.barrier_cycles,
            )
        self.model = ParallelizationModel(kernel, params)
        self.n_cores = n_cores

    def run_gemm(self, m: int, n: int, k: int) -> SoftwareResult:
        """Estimate the cycles of one ``m x n x k`` matmul."""
        cycles = self.model.matmul_cycles(m, n, k)
        return SoftwareResult(m=m, n=n, k=k, cycles=cycles, n_cores=self.n_cores)

    def compute(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Numerical result of the software kernel (bit-identical to the HW result).

        Evaluated with the guarded SIMD kernels, so it reproduces the
        accelerator's single-rounded FP16 accumulation exactly.
        """
        return matmul_hw_order_simd(x, w)

    @property
    def peak_macs_per_cycle(self) -> float:
        """Asymptotic cluster throughput of the software kernel."""
        return self.model.peak_macs_per_cycle
