"""Software baseline: parallel FP16 matmul on the RISC-V cluster cores.

The paper compares RedMulE against the same matrix multiplications executed
in software on the 8 RISC-V (RI5CY-class) cores of the PULP cluster, using
their shared FPnew FPUs with FP16 SIMD support.  This package models that
baseline at the instruction-cost level:

* :mod:`repro.sw.kernel` -- per-core cost model of the optimised inner loop
  (loads, SIMD FMAs, pointer updates, loop handling);
* :mod:`repro.sw.parallel` -- work distribution across cores, barrier and
  fork/join overheads;
* :mod:`repro.sw.baseline` -- the user-facing facade returning cycle counts
  comparable with :class:`repro.redmule.engine.RedMulEResult`.
"""

from repro.sw.kernel import KernelCostModel, KernelParameters
from repro.sw.parallel import ParallelizationModel, ParallelParameters
from repro.sw.baseline import SoftwareBaseline, SoftwareResult

__all__ = [
    "KernelCostModel",
    "KernelParameters",
    "ParallelParameters",
    "ParallelizationModel",
    "SoftwareBaseline",
    "SoftwareResult",
]
