"""HWPE job controller FSM.

The ``hwpe-ctrl`` block sequences accelerator jobs: software acquires the
context, fills the register file, triggers the job, and the controller walks
IDLE -> RUNNING -> DONE, raising an event toward the cluster event unit when
the job finishes.  The controller is shared infrastructure between HWPEs
(RedMulE reuses it), so it lives here rather than inside the RedMulE package.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional


class HwpeState(enum.Enum):
    """States of the job controller."""

    IDLE = "idle"
    ACQUIRED = "acquired"
    RUNNING = "running"
    DONE = "done"


class HwpeController:
    """Job lifecycle controller with a done-event callback.

    Parameters
    ----------
    on_done:
        Optional callback invoked when a job completes (models the event line
        toward the cluster event unit that wakes up the offloading core).
    """

    def __init__(self, on_done: Optional[Callable[[], None]] = None) -> None:
        self.state = HwpeState.IDLE
        self.on_done = on_done
        #: Number of jobs completed since reset.
        self.jobs_completed = 0
        #: Cycle counter of the currently running / last finished job.
        self.job_cycles = 0
        #: History of per-job cycle counts.
        self.job_history: List[int] = []

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a job is running."""
        return self.state is HwpeState.RUNNING

    def acquire(self) -> int:
        """Acquire the job context (returns 0 like the hardware, or -1 if busy)."""
        if self.state in (HwpeState.RUNNING,):
            return -1
        self.state = HwpeState.ACQUIRED
        return 0

    def trigger(self) -> None:
        """Start the configured job."""
        if self.state is not HwpeState.ACQUIRED:
            raise RuntimeError(
                f"trigger while in state {self.state.value!r}; acquire() first"
            )
        self.state = HwpeState.RUNNING
        self.job_cycles = 0

    def tick(self, cycles: int = 1) -> None:
        """Advance the job cycle counter while running."""
        if self.state is HwpeState.RUNNING:
            self.job_cycles += cycles

    def finish(self) -> None:
        """Mark the running job as complete and raise the done event."""
        if self.state is not HwpeState.RUNNING:
            raise RuntimeError(f"finish while in state {self.state.value!r}")
        self.state = HwpeState.DONE
        self.jobs_completed += 1
        self.job_history.append(self.job_cycles)
        if self.on_done is not None:
            self.on_done()

    def clear(self) -> None:
        """Return to IDLE (software acknowledges the done event)."""
        if self.state is HwpeState.RUNNING:
            raise RuntimeError("cannot clear a running job")
        self.state = HwpeState.IDLE

    def abort(self) -> None:
        """Abandon the current context or job without counting a completion.

        Models the recovery path after a hung or failed job: the context is
        released and the cycle counter dropped, but ``jobs_completed`` and
        the history only ever record jobs that actually finished.
        """
        self.state = HwpeState.IDLE
        self.job_cycles = 0

    def reset(self) -> None:
        """Hard reset of the controller."""
        self.state = HwpeState.IDLE
        self.jobs_completed = 0
        self.job_cycles = 0
        self.job_history.clear()
