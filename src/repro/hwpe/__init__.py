"""Hardware Processing Engine (HWPE) infrastructure.

RedMulE is integrated in the PULP cluster as an HWPE: a memory-mapped,
software-programmed accelerator that shares the TCDM with the cores.  This
package models the pieces of that integration that are independent of the
accelerator's datapath:

* :mod:`repro.hwpe.stream` -- ready/valid stream primitives and FIFOs used
  between the streamer and the datapath buffers;
* :mod:`repro.hwpe.regfile` -- the memory-mapped register file through which
  cores program a job (operand pointers, matrix sizes, trigger/status);
* :mod:`repro.hwpe.controller` -- the job controller FSM and the event line
  back to the cores.
"""

from repro.hwpe.stream import Fifo, StreamPort
from repro.hwpe.regfile import HwpeRegisterFile, RegisterSpec
from repro.hwpe.controller import HwpeController, HwpeState

__all__ = [
    "Fifo",
    "HwpeController",
    "HwpeRegisterFile",
    "HwpeState",
    "RegisterSpec",
    "StreamPort",
]
