"""Memory-mapped HWPE register file.

Cores program RedMulE by writing a job descriptor into the accelerator's
register file through the peripheral interconnect, then writing the trigger
register and waiting for the done event.  The register file model keeps a
named map of 32-bit registers with byte offsets, supports the
acquire/trigger/status protocol of the PULP ``hwpe-ctrl`` IP in a simplified
form, and is the programming interface used by the cluster model and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class RegisterSpec:
    """Description of one 32-bit register in the file."""

    name: str
    offset: int
    writable: bool = True
    reset: int = 0
    doc: str = ""


class HwpeRegisterFile:
    """A bank of named, memory-mapped 32-bit registers.

    Registers are addressed either by name (convenient for models and tests)
    or by byte offset (what a core store instruction would use).
    """

    def __init__(self, specs: List[RegisterSpec], name: str = "hwpe-regfile") -> None:
        self.name = name
        self._by_name: Dict[str, RegisterSpec] = {}
        self._by_offset: Dict[int, RegisterSpec] = {}
        self._values: Dict[str, int] = {}
        for spec in specs:
            if spec.name in self._by_name:
                raise ValueError(f"duplicate register name {spec.name!r}")
            if spec.offset in self._by_offset:
                raise ValueError(f"duplicate register offset {spec.offset:#x}")
            if spec.offset % 4:
                raise ValueError(f"register {spec.name!r} offset not word-aligned")
            self._by_name[spec.name] = spec
            self._by_offset[spec.offset] = spec
            self._values[spec.name] = spec.reset & 0xFFFFFFFF
        #: Count of register write accesses (used to model offload cost).
        self.write_accesses = 0
        #: Count of register read accesses.
        self.read_accesses = 0

    # -- name-based access --------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        """Return all register names in offset order."""
        return [spec.name for spec in sorted(self._by_name.values(),
                                             key=lambda s: s.offset)]

    def spec(self, name: str) -> RegisterSpec:
        """Return the :class:`RegisterSpec` for a register name."""
        return self._by_name[name]

    def read(self, name: str) -> int:
        """Read a register by name."""
        self.read_accesses += 1
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        """Write a register by name (raises on read-only registers)."""
        spec = self._by_name[name]
        if not spec.writable:
            raise PermissionError(f"register {name!r} is read-only")
        self.write_accesses += 1
        self._values[name] = value & 0xFFFFFFFF

    def poke(self, name: str, value: int) -> None:
        """Hardware-side update of a register (ignores the writable flag)."""
        if name not in self._by_name:
            raise KeyError(name)
        self._values[name] = value & 0xFFFFFFFF

    # -- offset-based access ---------------------------------------------------
    def read_offset(self, offset: int) -> int:
        """Read a register by byte offset (as a core load would)."""
        spec = self._by_offset.get(offset)
        if spec is None:
            raise KeyError(f"no register at offset {offset:#x}")
        return self.read(spec.name)

    def write_offset(self, offset: int, value: int) -> None:
        """Write a register by byte offset (as a core store would)."""
        spec = self._by_offset.get(offset)
        if spec is None:
            raise KeyError(f"no register at offset {offset:#x}")
        self.write(spec.name, value)

    # -- bulk helpers -----------------------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all register values by name."""
        return dict(self._values)

    def reset(self) -> None:
        """Reset every register to its declared reset value."""
        for name, spec in self._by_name.items():
            self._values[name] = spec.reset & 0xFFFFFFFF
        self.write_accesses = 0
        self.read_accesses = 0
