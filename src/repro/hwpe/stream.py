"""Ready/valid stream primitives.

The HWPE streamer decouples memory accesses from the datapath through small
FIFOs on the X, W and Z streams (visible in Fig. 1 of the paper).  The model
only needs two abstractions:

* :class:`Fifo` -- a bounded queue with full/empty status and occupancy
  statistics, advanced once per simulated cycle by its producer/consumer;
* :class:`StreamPort` -- a single-entry ready/valid handshake used where a
  full FIFO would be overkill (e.g. the store path from the Z buffer).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with handshake-style push/pop.

    ``push`` returns ``False`` when the FIFO is full (the producer must retry
    next cycle) and ``pop`` returns ``None`` when it is empty, mirroring a
    ready/valid interface without modelling the wires explicitly.
    """

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth <= 0:
            raise ValueError("FIFO depth must be positive")
        self.depth = depth
        self.name = name
        self._entries: Deque[T] = deque()
        #: Number of successful pushes.
        self.pushes = 0
        #: Number of successful pops.
        self.pops = 0
        #: Number of pushes refused because the FIFO was full.
        self.push_stalls = 0
        #: Peak occupancy observed.
        self.max_occupancy = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Current number of entries."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no more entries can be pushed."""
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        """True when there is nothing to pop."""
        return not self._entries

    def push(self, item: T) -> bool:
        """Try to push one entry; returns whether it was accepted."""
        if self.full:
            self.push_stalls += 1
            return False
        self._entries.append(item)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        return True

    def pop(self) -> Optional[T]:
        """Pop the oldest entry, or return ``None`` when empty."""
        if not self._entries:
            return None
        self.pops += 1
        return self._entries.popleft()

    def peek(self) -> Optional[T]:
        """Return the oldest entry without removing it."""
        if not self._entries:
            return None
        return self._entries[0]

    def clear(self) -> None:
        """Drop all entries (used when a job is aborted/cleared)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fifo(name={self.name!r}, {len(self._entries)}/{self.depth})"


class StreamPort(Generic[T]):
    """Single-entry ready/valid port.

    The producer calls :meth:`put` when it has data (valid); the consumer
    calls :meth:`take` when it is ready.  A transaction completes when a put
    value is taken; both sides can check the handshake status without side
    effects through :attr:`valid` and :attr:`ready`.
    """

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self._payload: Optional[T] = None
        #: Completed transactions.
        self.transfers = 0

    @property
    def valid(self) -> bool:
        """True when the producer has presented data not yet consumed."""
        return self._payload is not None

    @property
    def ready(self) -> bool:
        """True when a new value can be presented."""
        return self._payload is None

    def put(self, payload: T) -> bool:
        """Present a value; returns False if the previous one is still pending."""
        if self._payload is not None:
            return False
        self._payload = payload
        return True

    def take(self) -> Optional[T]:
        """Consume the pending value, completing the handshake."""
        if self._payload is None:
            return None
        payload, self._payload = self._payload, None
        self.transfers += 1
        return payload
