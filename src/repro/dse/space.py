"""Declarative design spaces: axes over the RedMulE architecture knobs.

A :class:`DesignSpace` is a cartesian grid of named axes.  Five integer axes
map straight onto :class:`~repro.redmule.config.RedMulEConfig` fields
(``height``, ``length``, ``pipeline_regs``, ``w_prefetch_lines``,
``z_queue_depth``); the ``precision`` axis sweeps the element format
(``"fp16"``, ``"bf16"``, ``"fp8-e4m3"``, ``"fp8-e5m2"`` -- the FP8 formats
double elements-per-line and peak throughput at identical ports and array
geometry, which is exactly the trade-off the multi-precision follow-on
explores); two further axes describe the environment around the accelerator:

* ``tcdm_banks`` -- number of shared-memory banks (cluster area / energy
  through :class:`~repro.power.area.ClusterAreaModel`);
* ``memory_latency`` -- extra cycles the first access of every tile pre-load
  pays (the :class:`~repro.redmule.perf_model.RedMulEPerfModel`
  ``memory_latency`` extension).

Unless ``z_queue_depth`` is swept or pinned explicitly, it is auto-deepened
to ``max(reference depth, L)``: the engine's Z store queue deadlocks when a
tile has more live rows than queue slots, so a sweep over large ``L`` with
the reference depth would produce configurations the cycle-accurate
cross-validation could never run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from repro.fp.formats import FORMAT_NAMES
from repro.redmule.config import RedMulEConfig

#: Integer axes forwarded into :class:`RedMulEConfig`, in canonical order.
CONFIG_AXES: Tuple[str, ...] = (
    "height",
    "length",
    "pipeline_regs",
    "w_prefetch_lines",
    "z_queue_depth",
)

#: The element-format axis (forwarded as ``RedMulEConfig.format``).
PRECISION_AXIS = "precision"

#: Environment axes evaluated outside the accelerator configuration.
ENVIRONMENT_AXES: Tuple[str, ...] = ("tcdm_banks", "memory_latency")

#: Every valid axis name, in the order points iterate.
AXIS_ORDER: Tuple[str, ...] = CONFIG_AXES + (PRECISION_AXIS,) + ENVIRONMENT_AXES

#: Default value of each axis when it is not swept.
AXIS_DEFAULTS: Dict[str, object] = {
    "height": 4,
    "length": 8,
    "pipeline_regs": 3,
    "w_prefetch_lines": 1,
    "z_queue_depth": 8,
    "precision": "fp16",
    "tcdm_banks": 16,
    "memory_latency": 0,
}

#: Integer axes whose values must be >= 1 (``memory_latency`` alone may be 0).
_MIN_ONE = frozenset(AXIS_ORDER) - {"memory_latency", PRECISION_AXIS}


class DesignSpaceError(ValueError):
    """An invalid axis definition."""


@dataclass(frozen=True)
class DesignAxis:
    """One named axis: the values a single knob sweeps over."""

    name: str
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.name not in AXIS_ORDER:
            raise DesignSpaceError(
                f"unknown design axis {self.name!r}; valid axes: "
                f"{', '.join(AXIS_ORDER)}"
            )
        if not self.values:
            raise DesignSpaceError(f"axis {self.name!r} needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))
        if self.name == PRECISION_AXIS:
            for value in self.values:
                if value not in FORMAT_NAMES:
                    raise DesignSpaceError(
                        f"axis {self.name!r}: unknown format {value!r}; "
                        f"valid: {', '.join(FORMAT_NAMES)}"
                    )
            return
        floor = 1 if self.name in _MIN_ONE else 0
        for value in self.values:
            if not isinstance(value, int) or isinstance(value, bool):
                raise DesignSpaceError(
                    f"axis {self.name!r}: values must be integers, "
                    f"got {value!r}"
                )
            if value < floor:
                raise DesignSpaceError(
                    f"axis {self.name!r}: values must be >= {floor}, "
                    f"got {value}"
                )

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class DesignPoint:
    """One fully resolved grid point: a configuration plus its environment."""

    config: RedMulEConfig
    tcdm_banks: int
    memory_latency: int

    def axis_values(self) -> Dict[str, object]:
        """The point as an axis-name -> value mapping (exports, keys)."""
        return {
            "height": self.config.height,
            "length": self.config.length,
            "pipeline_regs": self.config.pipeline_regs,
            "w_prefetch_lines": self.config.w_prefetch_lines,
            "z_queue_depth": self.config.z_queue_depth,
            "precision": self.config.format,
            "tcdm_banks": self.tcdm_banks,
            "memory_latency": self.memory_latency,
        }

    def describe(self) -> str:
        """One-line summary of the point."""
        return (
            f"{self.config.describe()}, {self.tcdm_banks} TCDM banks, "
            f"memory latency {self.memory_latency}"
        )


class DesignSpace:
    """A cartesian grid over architecture and environment axes.

    Axes may be given as :class:`DesignAxis` objects or as a mapping of
    axis name to value sequence; un-swept axes sit at their defaults.
    """

    def __init__(
        self,
        axes: Union[Mapping[str, Sequence[int]], Iterable[DesignAxis]],
    ) -> None:
        if isinstance(axes, Mapping):
            axes = [DesignAxis(name, tuple(values))
                    for name, values in axes.items()]
        self.axes: Dict[str, DesignAxis] = {}
        for axis in axes:
            if not isinstance(axis, DesignAxis):
                raise DesignSpaceError(
                    "expected a DesignAxis or a name -> values mapping, "
                    f"got {axis!r}"
                )
            if axis.name in self.axes:
                raise DesignSpaceError(f"axis {axis.name!r} given twice")
            self.axes[axis.name] = axis
        if not self.axes:
            raise DesignSpaceError("a design space needs at least one axis")

    @classmethod
    def grid(cls, **axes: Sequence) -> "DesignSpace":
        """Keyword-argument convenience: ``DesignSpace.grid(height=(2, 4))``."""
        return cls(axes)

    # -- geometry ------------------------------------------------------------
    def __len__(self) -> int:
        size = 1
        for axis in self.axes.values():
            size *= len(axis)
        return size

    def axis_values(self, name: str) -> Tuple[int, ...]:
        """Values of one axis (the default as a singleton when not swept)."""
        axis = self.axes.get(name)
        if axis is not None:
            return axis.values
        return (AXIS_DEFAULTS[name],)

    def points(self) -> Iterator[DesignPoint]:
        """Iterate the grid in deterministic (canonical axis) order."""
        swept_z_queue = "z_queue_depth" in self.axes
        value_lists = [self.axis_values(name) for name in AXIS_ORDER]
        for values in itertools.product(*value_lists):
            resolved = dict(zip(AXIS_ORDER, values))
            if not swept_z_queue:
                # Deepen the Z queue alongside L so the engine (which
                # deadlocks when a tile has more live rows than queue
                # slots) can execute every point of the sweep.
                resolved["z_queue_depth"] = max(
                    AXIS_DEFAULTS["z_queue_depth"], resolved["length"]
                )
            config = RedMulEConfig(
                format=resolved[PRECISION_AXIS],
                **{name: resolved[name] for name in CONFIG_AXES},
            )
            yield DesignPoint(
                config=config,
                tcdm_banks=resolved["tcdm_banks"],
                memory_latency=resolved["memory_latency"],
            )

    def describe(self) -> str:
        """One line per swept axis plus the grid size."""
        lines = [f"design space: {len(self)} points over "
                 f"{len(self.axes)} axes"]
        for name in AXIS_ORDER:
            if name in self.axes:
                lines.append(f"  {name}: {list(self.axes[name].values)}")
        return "\n".join(lines)
