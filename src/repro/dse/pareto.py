"""Pareto-frontier extraction over sweep records.

Objectives are named attributes (or mapping keys) of the records being
compared; each one minimises by default and can be flipped with
``Objective(name, maximize=True)``.  A record is on the frontier when no
other record is at least as good on every objective and strictly better on
one -- the standard (weak-dominance) Pareto definition, so duplicated
trade-off points all survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, TypeVar, Union

Record = TypeVar("Record")


@dataclass(frozen=True)
class Objective:
    """One optimisation objective: an attribute name and a direction."""

    name: str
    maximize: bool = False

    def key(self, record: object) -> float:
        """The record's value on this objective, oriented for minimisation."""
        value = _get(record, self.name)
        return -value if self.maximize else value

    def describe(self) -> str:
        """``min name`` / ``max name``."""
        return f"{'max' if self.maximize else 'min'} {self.name}"


def _get(record: object, name: str) -> float:
    if isinstance(record, dict):
        return float(record[name])
    return float(getattr(record, name))


def resolve_objectives(
    objectives: Sequence[Union[str, Objective]]
) -> Tuple[Objective, ...]:
    """Normalise a mixed str/:class:`Objective` sequence (str = minimise)."""
    if not objectives:
        raise ValueError("at least one objective is required")
    resolved = tuple(
        objective if isinstance(objective, Objective) else Objective(objective)
        for objective in objectives
    )
    names = [objective.name for objective in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objective names in {names}")
    return resolved


def pareto_frontier(
    records: Iterable[Record],
    objectives: Sequence[Union[str, Objective]],
) -> List[Record]:
    """The non-dominated subset of ``records`` under ``objectives``.

    Returned sorted by the first objective (best first).  Records are
    pre-sorted lexicographically so a candidate can only be dominated by a
    record already accepted onto the frontier, which keeps the scan at
    O(n * frontier) instead of O(n^2).
    """
    resolved = resolve_objectives(objectives)
    keyed = [(tuple(objective.key(record) for objective in resolved), record)
             for record in records]
    keyed.sort(key=lambda pair: pair[0])

    frontier: List[Tuple[Tuple[float, ...], Record]] = []
    for key, record in keyed:
        dominated = False
        for accepted, _ in frontier:
            if all(a <= b for a, b in zip(accepted, key)) and accepted != key:
                dominated = True
                break
        if not dominated:
            frontier.append((key, record))
    return [record for _, record in frontier]
