"""The analytic design-space sweep driver.

:func:`sweep` walks every :class:`~repro.dse.space.DesignPoint` of a
:class:`~repro.dse.space.DesignSpace`, lowers the workload graph for that
point's configuration, times the lowered job stream through a
``backend="analytic"`` :class:`~repro.farm.SimulationFarm`, and joins the
timing with the area and energy models into one :class:`DsePoint` record
per grid point.  Configuration-dependent work (lowering, the farm batch,
the exactness scan, accelerator area) is computed once per distinct
configuration -- the environment axes (banks, latency) only re-derive the
per-point metrics -- and one :class:`~repro.farm.TimingCache` serves the
whole sweep (pass ``cache=`` to share it across sweeps and workloads too).

Per point the record carries the three objective families of the paper's
design argument:

* **performance** -- single-cluster serial cycles of the program, the
  dependency-aware makespan floor (critical path), throughput, utilisation;
* **area** -- standalone accelerator and full-cluster mm2 (the latter scaled
  by the ``tcdm_banks`` axis);
* **energy** -- cluster energy per program run and per MAC at the chosen
  operating point.

The result object extracts Pareto frontiers over any objective combination
and exports CSV/JSON for plotting.
"""

from __future__ import annotations

import csv
import json
import os
import time
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Union

from repro.dse.pareto import Objective, pareto_frontier, resolve_objectives
from repro.dse.space import DesignPoint, DesignSpace
from repro.farm import POLICY_ANALYTIC, SimulationFarm, TimingCache
from repro.graph.ir import WorkloadGraph
from repro.graph.zoo import build_model
from repro.power.area import AreaModel, ClusterAreaModel
from repro.power.energy import EnergyModel
from repro.power.technology import OperatingPoint, TECH_22NM, TechnologyParams
from repro.redmule.perf_model import RedMulEPerfModel
from repro.workloads.gemm import GemmShape

#: Default Pareto objectives: the paper's area-vs-speed trade-off.
DEFAULT_OBJECTIVES = ("area_mm2", "serial_cycles")


@dataclass(frozen=True)
class DsePoint:
    """One evaluated design point: axes, geometry, and objective values."""

    # -- swept axes ----------------------------------------------------------
    height: int
    length: int
    pipeline_regs: int
    w_prefetch_lines: int
    z_queue_depth: int
    precision: str
    tcdm_banks: int
    memory_latency: int
    # -- derived geometry ----------------------------------------------------
    n_fma: int
    n_mem_ports: int
    # -- program timing ------------------------------------------------------
    n_jobs: int
    total_macs: int
    serial_cycles: float
    makespan_cycles: float
    macs_per_cycle: float
    utilisation: float
    parallelism: float
    # -- area ----------------------------------------------------------------
    area_mm2: float
    cluster_area_mm2: float
    # -- energy / throughput at the operating point --------------------------
    gflops: float
    gflops_per_w: float
    energy_uj: float
    energy_per_mac_pj: float
    # -- model fidelity ------------------------------------------------------
    #: True when every job of the program lies in the cycle model's
    #: provably-exact (uncontended wide port) domain; False marks points
    #: whose cycles are an optimistic lower bound.
    model_exact: bool
    # -- provenance (not exported) -------------------------------------------
    point: DesignPoint

    def as_row(self) -> Dict[str, object]:
        """Flat export record (the ``point`` provenance field is dropped)."""
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if field.name != "point"
        }


#: Column order of the CSV/JSON exports.
EXPORT_COLUMNS = [field.name for field in fields(DsePoint)
                  if field.name != "point"]


def _graph_from_shapes(name: str, shapes: Sequence[GemmShape]) -> WorkloadGraph:
    """Wrap a flat shape list as a graph of independent GEMMs.

    Every GEMM reads its own graph-input tensors, so the lowered program has
    no dependencies: the serial cycles reproduce a flat-list sweep and the
    makespan floor is the largest single GEMM.
    """
    graph = WorkloadGraph(name)
    for index, shape in enumerate(shapes):
        prefix = f"g{index}"
        graph.add_tensor(f"{prefix}.x", shape.m, shape.n)
        graph.add_tensor(f"{prefix}.w", shape.n, shape.k)
        graph.add_tensor(f"{prefix}.z", shape.m, shape.k)
        graph.add_gemm(f"{prefix}.{shape.name}", shape,
                       x=f"{prefix}.x", w=f"{prefix}.w", z=f"{prefix}.z")
    return graph


def _resolve_workload(workload) -> WorkloadGraph:
    if isinstance(workload, WorkloadGraph):
        return workload
    if isinstance(workload, str):
        return build_model(workload)
    shapes = list(workload)
    if not shapes:
        raise ValueError("the workload shape list is empty")
    return _graph_from_shapes("workload", shapes)


@dataclass
class SweepResult:
    """Outcome of one :func:`sweep` call."""

    name: str
    workload_name: str
    points: List[DsePoint]
    frequency_hz: float
    technology_name: str
    tile: bool
    #: Wall-clock seconds the sweep took (timing + area + energy, per point).
    wall_clock_s: float
    #: Timing-cache traffic of this sweep (distinct shapes simulated once).
    cache_hits: int
    cache_misses: int
    #: Workload graph and lowering options, kept for cross-validation.
    graph: WorkloadGraph
    offload_cycles_per_job: float
    tcdm_budget_bytes: Optional[int]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of per-job timing lookups served from the cache."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def points_per_second(self) -> float:
        """Sweep rate (design points per wall-clock second)."""
        if self.wall_clock_s <= 0:
            return 0.0
        return len(self.points) / self.wall_clock_s

    @property
    def trusted_points(self) -> List[DsePoint]:
        """The points whose cycle estimates are provably exact."""
        return [point for point in self.points if point.model_exact]

    # -- frontiers -----------------------------------------------------------
    def pareto(
        self,
        objectives: Sequence[Union[str, Objective]] = DEFAULT_OBJECTIVES,
        trusted_only: bool = False,
    ) -> List[DsePoint]:
        """Pareto frontier of the sweep under the given objectives.

        With ``trusted_only`` only provably-exact points compete.  This
        matters more than it sounds: the cycle model is *optimistic* outside
        its exact domain, so saturated geometries gravitate onto unrestricted
        frontiers precisely because their estimates flatter them.
        """
        points = self.trusted_points if trusted_only else self.points
        return pareto_frontier(points, objectives)

    def best(self, objective: Union[str, Objective],
             trusted_only: bool = False) -> DsePoint:
        """The single best point on one objective.

        As with :meth:`pareto`, pass ``trusted_only`` to keep optimistic
        out-of-domain estimates from outbidding provably-exact points.
        """
        (resolved,) = resolve_objectives([objective])
        points = self.trusted_points if trusted_only else self.points
        if not points:
            raise ValueError("no points to choose from "
                             "(trusted_only on an all-saturated sweep?)")
        return min(points, key=resolved.key)

    # -- export --------------------------------------------------------------
    def to_csv(self, path: Union[str, os.PathLike]) -> int:
        """Write every point as CSV; returns the row count."""
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=EXPORT_COLUMNS)
            writer.writeheader()
            for point in self.points:
                writer.writerow(point.as_row())
        return len(self.points)

    def to_json(self, path: Union[str, os.PathLike],
                objectives: Sequence[Union[str, Objective]] = DEFAULT_OBJECTIVES,
                ) -> int:
        """Write the sweep (metadata + points + frontier indices) as JSON."""
        _ensure_parent(path)
        index_of = {id(point): index
                    for index, point in enumerate(self.points)}
        payload = {
            "name": self.name,
            "workload": self.workload_name,
            "technology": self.technology_name,
            "frequency_hz": self.frequency_hz,
            "tile": self.tile,
            "n_points": len(self.points),
            "wall_clock_s": self.wall_clock_s,
            "cache_hit_rate": self.cache_hit_rate,
            "objectives": [
                objective.describe()
                for objective in resolve_objectives(objectives)
            ],
            "pareto_indices": sorted(
                index_of[id(point)] for point in self.pareto(objectives)
            ),
            "points": [point.as_row() for point in self.points],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        return len(self.points)

    # -- reporting -----------------------------------------------------------
    def render(
        self,
        objectives: Sequence[Union[str, Objective]] = DEFAULT_OBJECTIVES,
        top: int = 12,
        trusted_only: bool = False,
    ) -> str:
        """Human-readable summary: sweep stats plus the frontier table."""
        from repro.perf.report import TextTable

        resolved = resolve_objectives(objectives)
        frontier = self.pareto(resolved, trusted_only=trusted_only)
        untrusted = len(self.points) - len(self.trusted_points)
        lines = [
            f"dse sweep {self.name}: {len(self.points)} points of "
            f"workload {self.workload_name} in {self.wall_clock_s:.2f} s "
            f"({self.points_per_second:.0f} points/s, "
            f"{100 * self.cache_hit_rate:.1f}% timing-cache hits"
            + (f", {untrusted} points outside the exact model domain"
               if untrusted else "")
            + ")",
            f"  pareto frontier ({', '.join(o.describe() for o in resolved)}"
            + (", trusted points only" if trusted_only else "")
            + f"): {len(frontier)} points"
            + (f", showing {top}" if len(frontier) > top else ""),
        ]
        table = TextTable([
            "H", "L", "P", "banks", "mem lat", "area mm2", "cycles",
            "makespan", "util %", "GFLOPS/W", "uJ/run",
        ])
        for point in frontier[:top]:
            table.add_row([
                point.height, point.length, point.pipeline_regs,
                point.tcdm_banks, point.memory_latency,
                round(point.area_mm2, 4), point.serial_cycles,
                point.makespan_cycles, round(100 * point.utilisation, 1),
                round(point.gflops_per_w, 0), round(point.energy_uj, 3),
            ])
        lines.extend("  " + line for line in table.render().splitlines())
        return "\n".join(lines)


def _ensure_parent(path: Union[str, os.PathLike]) -> None:
    parent = os.path.dirname(os.path.abspath(os.fspath(path)))
    os.makedirs(parent, exist_ok=True)


def sweep(
    space: DesignSpace,
    workload,
    name: str = "dse",
    technology: TechnologyParams = TECH_22NM,
    operating_point: Optional[OperatingPoint] = None,
    tile: bool = False,
    tcdm_budget_bytes: Optional[int] = None,
    offload_cycles_per_job: float = 0.0,
    cache: Optional[TimingCache] = None,
) -> SweepResult:
    """Evaluate a workload over every point of a design space analytically.

    ``workload`` is a :class:`~repro.graph.ir.WorkloadGraph`, a model-zoo
    name, or a flat sequence of :class:`~repro.workloads.gemm.GemmShape`
    (treated as independent GEMMs).  All timing flows through one shared
    analytic farm cache; the closed form makes thousand-point sweeps a
    matter of seconds where the cycle-accurate engine would need hours
    (``benchmarks/bench_dse_frontier.py`` pins the >= 50x gap).
    """
    if offload_cycles_per_job < 0:
        raise ValueError("offload_cycles_per_job must be >= 0")
    graph = _resolve_workload(workload)
    point_op = operating_point or technology.reference_point
    shared_cache = cache if cache is not None else TimingCache()
    hits0, misses0 = shared_cache.stats.hits, shared_cache.stats.misses

    lower_kwargs: Dict[str, object] = {"tile": tile}
    if tcdm_budget_bytes is not None:
        lower_kwargs["tcdm_budget_bytes"] = tcdm_budget_bytes

    started = time.perf_counter()
    records: List[DsePoint] = []
    # Lowering, the farm batch, the exactness scan and the accelerator area
    # depend only on the configuration, not on the environment axes
    # (tcdm_banks / memory_latency), so they are computed once per config:
    # a grid with E environment combinations per config would otherwise
    # redo them E times.
    per_config: Dict[RedMulEConfig, tuple] = {}
    for point in space.points():
        config = point.config
        cached = per_config.get(config)
        if cached is None:
            program = graph.lower(config=config, **lower_kwargs)
            farm = SimulationFarm(config=config, backend=POLICY_ANALYTIC,
                                  max_workers=1, cache=shared_cache)
            results = farm.run(program.jobs)
            model = RedMulEPerfModel(config)
            cached = (
                program,
                [(result.cycles, result.record.n_tiles)
                 for result in results],
                all(model.is_exact(job) for job in program.jobs),
                AreaModel(config, technology).total(),
            )
            per_config[config] = cached
        program, base_timing, model_exact, area = cached
        # The memory-latency axis charges the extra access latency once per
        # tile pre-load, exactly like RedMulEPerfModel(memory_latency=...)
        # (the per-record tile counts make the two formulations identical).
        costs = [
            cycles + point.memory_latency * n_tiles + offload_cycles_per_job
            for cycles, n_tiles in base_timing
        ]
        serial = float(sum(costs))
        makespan = program.critical_path_cycles(costs)
        total_macs = program.total_macs
        macs_per_cycle = total_macs / serial if serial > 0 else 0.0
        utilisation = macs_per_cycle / config.ideal_macs_per_cycle

        cluster_area = ClusterAreaModel(
            config, technology, tcdm_banks=point.tcdm_banks
        ).total()
        energy_model = EnergyModel(config, technology)
        power_w = energy_model.cluster_power_accel_w(point_op, utilisation)
        runtime_s = serial / point_op.frequency_hz
        energy_j = power_w * runtime_s
        gflops = 2.0 * macs_per_cycle * point_op.frequency_hz / 1e9

        records.append(DsePoint(
            height=config.height,
            length=config.length,
            pipeline_regs=config.pipeline_regs,
            w_prefetch_lines=config.w_prefetch_lines,
            z_queue_depth=config.z_queue_depth,
            precision=config.format,
            tcdm_banks=point.tcdm_banks,
            memory_latency=point.memory_latency,
            n_fma=config.n_fma,
            n_mem_ports=config.n_mem_ports,
            n_jobs=program.n_jobs,
            total_macs=total_macs,
            serial_cycles=serial,
            makespan_cycles=makespan,
            macs_per_cycle=macs_per_cycle,
            utilisation=utilisation,
            parallelism=serial / makespan if makespan > 0 else 1.0,
            area_mm2=area,
            cluster_area_mm2=cluster_area,
            gflops=gflops,
            gflops_per_w=gflops / power_w if power_w > 0 else 0.0,
            energy_uj=energy_j * 1e6,
            energy_per_mac_pj=(energy_j / total_macs * 1e12
                               if total_macs else 0.0),
            model_exact=model_exact,
            point=point,
        ))
    elapsed = time.perf_counter() - started

    return SweepResult(
        name=name,
        workload_name=graph.name,
        points=records,
        frequency_hz=point_op.frequency_hz,
        technology_name=technology.name,
        tile=tile,
        wall_clock_s=elapsed,
        cache_hits=shared_cache.stats.hits - hits0,
        cache_misses=shared_cache.stats.misses - misses0,
        graph=graph,
        offload_cycles_per_job=offload_cycles_per_job,
        tcdm_budget_bytes=tcdm_budget_bytes,
    )
