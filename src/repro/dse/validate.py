"""Cross-validation of analytic sweep points against the cycle-accurate engine.

A sweep is only as trustworthy as its cycle model, so the explorer carries
its own calibration pass: a deterministic sample of (frontier) points is
re-lowered and its jobs are run through a ``backend="engine"``
:class:`~repro.farm.SimulationFarm`; the per-job engine cycles are compared
against the analytic estimates the sweep used.

Caveats the report makes explicit:

* the comparison is on the **base** cycle model -- the ``memory_latency``
  axis is an analytic extrapolation with no engine counterpart, so latency
  is excluded from the checked cycles (it shifts both sides of a frontier
  equally);
* jobs above ``max_macs_per_job`` are skipped (running them through the
  Python engine is exactly the cost the analytic backend exists to avoid)
  and counted in ``jobs_skipped``;
* points whose configuration the engine cannot execute (``P = 0``) are
  skipped entirely;
* on the model's provably-exact domain
  (:meth:`~repro.redmule.perf_model.RedMulEPerfModel.is_exact`) the expected
  error is zero; elsewhere the wide port can saturate and the report's
  ``max_rel_error`` quantifies the model optimism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.farm import BACKEND_ENGINE, SimulationFarm
from repro.redmule.perf_model import RedMulEPerfModel

#: Engine jobs above this MAC count are skipped by default (wall clock).
DEFAULT_MAX_MACS_PER_JOB = 1 << 16


class DseValidationError(AssertionError):
    """The sampled frontier disagreed with the engine beyond tolerance."""


@dataclass(frozen=True)
class PointValidation:
    """Engine-vs-analytic comparison of one sampled design point."""

    #: Axis values of the point (``DsePoint.as_row()`` subset).
    height: int
    length: int
    pipeline_regs: int
    jobs_checked: int
    jobs_skipped: int
    max_rel_error: float
    mean_rel_error: float
    #: True when every checked job lies in the model's provably-exact domain.
    exact_expected: bool


@dataclass
class DseValidationReport:
    """Aggregate outcome of one cross-validation pass."""

    samples: List[PointValidation]
    tolerance: float
    points_skipped: int = 0

    @property
    def jobs_checked(self) -> int:
        """Engine jobs compared across all sampled points."""
        return sum(sample.jobs_checked for sample in self.samples)

    @property
    def max_rel_error(self) -> float:
        """Worst per-job relative cycle error over the sample."""
        return max((sample.max_rel_error for sample in self.samples),
                   default=0.0)

    @property
    def mean_rel_error(self) -> float:
        """Job-weighted mean relative cycle error over the sample."""
        total = sum(sample.mean_rel_error * sample.jobs_checked
                    for sample in self.samples)
        checked = self.jobs_checked
        return total / checked if checked else 0.0

    @property
    def ok(self) -> bool:
        """True when jobs were actually checked and stayed within tolerance.

        An empty sample (all points skipped, every job above the MAC cap,
        empty trusted frontier) is *not* ok: a validation gate that passes
        without validating anything would be worse than no gate at all.
        """
        return self.jobs_checked > 0 and self.max_rel_error <= self.tolerance

    def describe(self) -> str:
        """One-line summary for sweep reports."""
        if self.jobs_checked == 0:
            return (
                f"cross-validation: VACUOUS -- 0 engine jobs checked "
                f"({self.points_skipped} points skipped)"
            )
        return (
            f"cross-validation: {self.jobs_checked} engine jobs over "
            f"{len(self.samples)} points, max error "
            f"{100 * self.max_rel_error:.2f}% "
            f"(mean {100 * self.mean_rel_error:.2f}%, tolerance "
            f"{100 * self.tolerance:.0f}%, "
            f"{'ok' if self.ok else 'EXCEEDED'})"
        )


def _sample_indices(count: int, sample: int) -> List[int]:
    """``sample`` indices spread evenly (and deterministically) over a range."""
    if count <= sample:
        return list(range(count))
    if sample == 1:
        return [count // 2]
    step = (count - 1) / (sample - 1)
    return sorted({round(index * step) for index in range(sample)})


def cross_validate(
    result,
    sample: int = 5,
    tolerance: float = 0.05,
    max_macs_per_job: int = DEFAULT_MAX_MACS_PER_JOB,
    max_workers: Optional[int] = None,
    points: Optional[Sequence] = None,
    trusted_only: bool = False,
    raise_on_error: bool = False,
) -> DseValidationReport:
    """Re-run a sampled subset of a sweep's frontier on the engine.

    ``result`` is a :class:`~repro.dse.sweep.SweepResult`; ``points``
    overrides the sampled set (default: an even spread over the default
    Pareto frontier, restricted to provably-exact points when
    ``trusted_only``).  Raises :class:`DseValidationError` when
    ``raise_on_error`` is set and the worst relative cycle error exceeds
    ``tolerance``.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if sample < 1:
        raise ValueError("sample must be >= 1")
    candidates = (list(points) if points is not None
                  else result.pareto(trusted_only=trusted_only))
    chosen = [candidates[i] for i in _sample_indices(len(candidates), sample)]

    samples: List[PointValidation] = []
    points_skipped = 0
    for dse_point in chosen:
        config = dse_point.point.config
        if config.pipeline_regs < 1:
            points_skipped += 1
            continue
        lower_kwargs = {"tile": result.tile}
        if result.tcdm_budget_bytes is not None:
            lower_kwargs["tcdm_budget_bytes"] = result.tcdm_budget_bytes
        program = result.graph.lower(config=config, **lower_kwargs)
        model = RedMulEPerfModel(config)

        jobs = [job for job in program.jobs
                if job.total_macs <= max_macs_per_job]
        skipped = program.n_jobs - len(jobs)
        if not jobs:
            points_skipped += 1
            continue

        farm_kwargs = {}
        if max_workers is not None:
            farm_kwargs["max_workers"] = max_workers
        farm = SimulationFarm(config=config, backend=BACKEND_ENGINE,
                              **farm_kwargs)
        engine_results = farm.run(jobs)
        errors = []
        exact_expected = True
        for job, engine_result in zip(jobs, engine_results):
            estimate = model.estimate(job)
            errors.append(
                abs(estimate.cycles - engine_result.cycles)
                / engine_result.cycles
            )
            exact_expected = exact_expected and model.is_exact(job)
        samples.append(PointValidation(
            height=config.height,
            length=config.length,
            pipeline_regs=config.pipeline_regs,
            jobs_checked=len(jobs),
            jobs_skipped=skipped,
            max_rel_error=max(errors),
            mean_rel_error=sum(errors) / len(errors),
            exact_expected=exact_expected,
        ))

    report = DseValidationReport(samples=samples, tolerance=tolerance,
                                 points_skipped=points_skipped)
    if raise_on_error and not report.ok:
        raise DseValidationError(report.describe())
    return report
