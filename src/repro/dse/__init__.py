"""Analytic design-space exploration with Pareto frontiers.

The paper's central contribution is a design-space argument: RedMulE's array
shape, pipeline depth and memory interface are chosen to balance cycles
against area and energy.  This package turns that argument into a tool:

* :mod:`repro.dse.space` -- declarative axis grids over the architecture
  (H, L, P, W prefetch, Z queue) and its environment (TCDM banks, memory
  latency);
* :mod:`repro.dse.sweep` -- the driver: thousands of (configuration x
  workload graph) points per second through the farm's ``analytic`` backend,
  joined with the area/energy models into one record per point;
* :mod:`repro.dse.pareto` -- non-dominated frontier extraction over any
  objective combination;
* :mod:`repro.dse.validate` -- cycle-accurate cross-validation of sampled
  frontier points, reporting the model error the sweep rests on.

Quickstart::

    from repro.dse import DesignSpace, cross_validate, sweep

    space = DesignSpace.grid(height=(2, 4, 8), length=(4, 8, 16),
                             pipeline_regs=(1, 3))
    result = sweep(space, "autoencoder-b1")
    for point in result.pareto(("area_mm2", "serial_cycles")):
        print(point.height, point.length, point.area_mm2, point.serial_cycles)
    print(cross_validate(result, sample=3).describe())
"""

from repro.dse.pareto import Objective, pareto_frontier, resolve_objectives
from repro.dse.space import (
    AXIS_DEFAULTS,
    AXIS_ORDER,
    CONFIG_AXES,
    ENVIRONMENT_AXES,
    DesignAxis,
    DesignPoint,
    DesignSpace,
    DesignSpaceError,
)
from repro.dse.sweep import (
    DEFAULT_OBJECTIVES,
    EXPORT_COLUMNS,
    DsePoint,
    SweepResult,
    sweep,
)
from repro.dse.validate import (
    DEFAULT_MAX_MACS_PER_JOB,
    DseValidationError,
    DseValidationReport,
    PointValidation,
    cross_validate,
)

__all__ = [
    "AXIS_DEFAULTS",
    "AXIS_ORDER",
    "CONFIG_AXES",
    "DEFAULT_MAX_MACS_PER_JOB",
    "DEFAULT_OBJECTIVES",
    "DesignAxis",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceError",
    "DseValidationError",
    "DseValidationReport",
    "DsePoint",
    "ENVIRONMENT_AXES",
    "EXPORT_COLUMNS",
    "Objective",
    "PointValidation",
    "SweepResult",
    "cross_validate",
    "pareto_frontier",
    "resolve_objectives",
    "sweep",
]
