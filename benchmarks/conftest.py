"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment driver under ``pytest-benchmark`` (so the cost of the
reproduction itself is tracked), stores the headline numbers in the benchmark
record's ``extra_info`` (machine-readable, ends up in the JSON report), and
prints the rows/series the paper reports so ``pytest benchmarks/
--benchmark-only -s`` shows the reproduced result next to the paper value.

When the ``BENCH_RESULTS_DIR`` environment variable is set,
:func:`record_info` additionally writes one ``BENCH_<name>.json`` file per
benchmark with the numeric headline metrics plus the measured wall-clock
statistics.  CI uploads those files as artifacts and feeds them to
``benchmarks/compare_baselines.py``, which fails the build when a metric
regresses beyond its threshold against the baselines committed under
``benchmarks/baselines/`` (see the README's "updating the bench baselines"
procedure).
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterable, Optional, Sequence

from repro.perf.report import TextTable

#: Environment variable naming the directory ``BENCH_*.json`` files go to.
BENCH_RESULTS_ENV = "BENCH_RESULTS_DIR"


def print_series(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
    """Print a reproduced table/series with a title banner."""
    table = TextTable(headers)
    table.add_rows(rows)
    print()
    print(f"--- {title} ---")
    print(table.render())


def _result_name(benchmark, name: Optional[str]) -> str:
    if name is None:
        name = getattr(benchmark, "name", None) or "benchmark"
        name = re.sub(r"^test_", "", name)
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name)


def _wall_clock_metrics(benchmark) -> Dict[str, float]:
    """Wall-clock statistics of the record, if the run produced any."""
    stats = getattr(benchmark, "stats", None)
    stats = getattr(stats, "stats", stats)
    metrics: Dict[str, float] = {}
    for source, target in (("mean", "wall_clock_s"),
                           ("min", "wall_clock_min_s")):
        value = getattr(stats, source, None)
        if isinstance(value, (int, float)):
            metrics[target] = float(value)
    return metrics


def record_info(benchmark, info: Dict[str, object],
                name: Optional[str] = None) -> None:
    """Attach headline numbers to the pytest-benchmark record.

    With ``BENCH_RESULTS_DIR`` set, the numeric metrics (plus wall-clock
    stats) are also written to ``<dir>/BENCH_<name>.json``; ``name``
    defaults to the benchmark's test name without the ``test_`` prefix.
    """
    for key, value in info.items():
        benchmark.extra_info[key] = value

    directory = os.environ.get(BENCH_RESULTS_ENV)
    if not directory:
        return
    metrics = {
        key: float(value) for key, value in info.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    metrics.update(_wall_clock_metrics(benchmark))
    payload = {"name": _result_name(benchmark, name), "metrics": metrics}
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{payload['name']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
