"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment driver under ``pytest-benchmark`` (so the cost of the
reproduction itself is tracked), stores the headline numbers in the benchmark
record's ``extra_info`` (machine-readable, ends up in the JSON report), and
prints the rows/series the paper reports so ``pytest benchmarks/
--benchmark-only -s`` shows the reproduced result next to the paper value.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import pytest

from repro.perf.report import TextTable


def print_series(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
    """Print a reproduced table/series with a title banner."""
    table = TextTable(headers)
    table.add_rows(rows)
    print()
    print(f"--- {title} ---")
    print(table.render())


def record_info(benchmark, info: Dict[str, object]) -> None:
    """Attach headline numbers to the pytest-benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
