"""Observability overhead gate + Chrome-trace round-trip.

Two properties of the :mod:`repro.obs` layer are pinned here:

* **disabled-path overhead <= 2 %** -- the serve-million smoke workload
  (the ``million_tenants`` mix on a ~75 %-utilised pool, warm memo) runs
  with the default :data:`~repro.obs.NULL_TELEMETRY`, where every hook is
  one attribute check.  The sustained simulated-request throughput must
  stay within 2 % of the committed serve-million baseline's
  ``sim_req_per_second`` budget (a 60k floor -- the loop actually
  sustains ~150k+ locally, so a >=2 % true overhead regression shows up
  long before the budget does).  Like the serve-million wall gate, the
  strict assertion arms at the default request scale and stands down on
  short CI smokes whose fixed costs are not amortised; the measured
  throughput is recorded either way and gated by
  ``compare_baselines.py``.
* **trace round-trip** -- the same workload under a live
  :class:`~repro.obs.Telemetry` exports a Chrome ``trace_event`` document
  that passes the schema/nesting validator, with one request span per
  completion, every one of them on a ``cluster<N>`` lane of the
  simulated-cycles serve track.

The paired enabled run also reports the *enabled* telemetry cost
(informational: full per-request spans plus gauge samples are expected to
cost real time; only the disabled path must be free).
"""

import json
import math
import os
import time

from benchmarks.conftest import print_series, record_info
from repro.experiments.serve import million_tenants
from repro.farm import SimulationFarm
from repro.obs import NULL_TELEMETRY, Telemetry, validate_chrome_trace
from repro.serve import ContinuousServer, RequestGenerator

#: Request volume of the measured window; CI smokes at a lower scale via
#: the environment variable.
N_REQUESTS = int(os.environ.get("OBS_OVERHEAD_REQUESTS", "20000"))

#: The strict <= 2 % gate arms at the default scale and above -- short
#: smoke runs pay fixed costs (imports, memo priming) without amortising
#: them, exactly like the serve-million wall gate.
GATE_AT_REQUESTS = 20_000

#: Allowed disabled-telemetry throughput loss vs the committed budget.
OVERHEAD_BUDGET = 0.02

#: Aggregate simulated arrival rate (matches the serve-million bench).
AGGREGATE_RPS = 100_000.0

#: Pool sizing target: offered erlangs / clusters.
TARGET_UTILISATION = 0.75

#: Interleaved repeats; min-of-k tames scheduler noise.
REPEATS = 3

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                             "BENCH_serve_million.json")


def _pool_size(server, tenants):
    """Clusters needed to keep the offered load at the target utilisation."""
    load = 0.0
    for tenant in tenants:
        mean_service = sum(
            weight * server.service_cycles(model.graph, tenant.precision)
            for model, weight in zip(tenant.models, tenant.mix_weights))
        load += tenant.rps * mean_service / server.frequency_hz
    return max(1, math.ceil(load / TARGET_UTILISATION))


def _serve_million_budget() -> float:
    """The committed serve-million throughput budget (req/s floor)."""
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        return float(json.load(handle)["metrics"]["sim_req_per_second"])


def test_obs_overhead_and_trace_roundtrip(benchmark):
    farm = SimulationFarm(backend="model", max_workers=1)
    tenants = million_tenants(AGGREGATE_RPS)
    sizing = ContinuousServer(n_clusters=1, farm=farm, backend="model")
    clusters = _pool_size(sizing, tenants)
    generator = RequestGenerator(tenants, seed=0)
    duration_s = N_REQUESTS / generator.total_rps

    def fresh_server(telemetry=None):
        server = ContinuousServer(n_clusters=clusters, farm=farm,
                                  backend="model", telemetry=telemetry)
        # Prime the service memo so every measured run is warm end to end.
        for tenant in tenants:
            for model in tenant.models:
                server.service_cycles(model.graph, tenant.precision)
        return server

    fresh_server()  # warm the farm's timing cache

    def run(telemetry=None):
        server = fresh_server(telemetry)
        start = time.perf_counter()
        report = server.simulate(generator.stream(duration_s))
        return report, time.perf_counter() - start

    # The default construction binds the null telemetry: the disabled
    # path under measurement is the shipped default, not a special mode.
    assert ContinuousServer(n_clusters=1, farm=farm,
                            backend="model")._obs is NULL_TELEMETRY

    # Interleave disabled/enabled repeats so drift hits both arms alike.
    disabled_walls, enabled_walls = [], []
    disabled_report = enabled_report = None
    enabled_telemetry = None
    for _ in range(REPEATS):
        disabled_report, wall = run()
        disabled_walls.append(wall)
        enabled_telemetry = Telemetry()
        enabled_report, wall = run(enabled_telemetry)
        enabled_walls.append(wall)

    assert disabled_report.offered == enabled_report.offered
    assert disabled_report.completed == enabled_report.completed

    disabled_rps = disabled_report.offered / min(disabled_walls)
    enabled_rps = enabled_report.offered / min(enabled_walls)
    budget = _serve_million_budget()
    floor = (1.0 - OVERHEAD_BUDGET) * budget
    if N_REQUESTS >= GATE_AT_REQUESTS:
        assert disabled_rps >= floor, (
            f"disabled-telemetry loop sustained {disabled_rps:,.0f} sim "
            f"req/s, below {floor:,.0f} (committed serve-million budget "
            f"{budget:,.0f} minus the {100 * OVERHEAD_BUDGET:.0f}% "
            "observability overhead allowance)")

    # Round-trip: the enabled run's Chrome trace must validate, with one
    # request span per completion, all nested inside cluster lanes of the
    # simulated-cycles serve track.
    trace = enabled_telemetry.chrome_trace()
    stats = validate_chrome_trace(trace)
    events = trace["traceEvents"]
    thread_names = {
        (event["pid"], event["tid"]): event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"}
    process_names = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"}
    request_spans = [event for event in events
                     if event["ph"] == "X" and event.get("cat") == "request"]
    assert len(request_spans) == enabled_report.completed
    for span in request_spans:
        assert process_names[span["pid"]] == "serve (cycles)"
        assert thread_names[(span["pid"], span["tid"])].startswith("cluster")
    snapshot = enabled_telemetry.metrics_snapshot()
    assert (snapshot["counters"]["serve.completed"]
            == enabled_report.completed)

    # Wall-clock record on the disabled path (the shipped default).
    benchmark(lambda: run()[0])

    overhead = max(0.0, 1.0 - enabled_rps / disabled_rps)
    print_series(
        "observability overhead (serve-million smoke workload)",
        ["requests", "clusters", "disabled req/s", "enabled req/s",
         "enabled cost", "trace events", "span depth"],
        [[disabled_report.offered, clusters, f"{disabled_rps:,.0f}",
          f"{enabled_rps:,.0f}", f"{100 * overhead:.1f}%",
          stats["events"], stats["max_depth"]]],
    )

    record_info(benchmark, {
        "requests": disabled_report.offered,
        "disabled_req_per_second": disabled_rps,
        "enabled_req_per_second": enabled_rps,
        "trace_request_spans": len(request_spans),
    }, name="obs_overhead")
