"""Continuous-batching benchmark: batched vs. unbatched decode serving.

A saturation burst of identical LLM decode sessions (prefill 8, 16
generated tokens each) is served on a single cluster twice: once with
``batch_cap=1`` (every session steps alone, the serial baseline) and once
with ``batch_cap=8`` (sessions coalesce their weight-stationary halves
into batched steps, joining and leaving at step boundaries).  Two
properties are asserted:

* **batching wins** -- the batched makespan is at least 2x shorter.  The
  projections and MLP dominate a skinny decode step and the RedMulE array
  pads ``k <= 16`` to its 16-wide line anyway, so running them once at
  ``k = 8`` costs roughly what ``k = 1`` does -- near-8x on the shared
  half, diluted by the per-member attention that cannot coalesce;
* **step memoisation** -- warm steps resolve from the (step-signature,
  occupancy) memo: after the first session's positions are priced, the
  farm sees no new work from the remaining traffic.

Wall-clock speed is tracked by ``pytest-benchmark`` on the batched run.
"""

from benchmarks.conftest import print_series, record_info
from repro.farm import SimulationFarm
from repro.graph.llm import build_decode_spec
from repro.serve import ContinuousServer, DecodeSessionSpec, decode_burst

#: Burst size: two full batches' worth of sessions at the default cap.
SESSIONS = 16
BATCH_CAP = 8
PREFILL = 8
DECODE_STEPS = 16


def test_decode_batching_speedup(benchmark):
    farm = SimulationFarm(backend="model", max_workers=1)
    session = DecodeSessionSpec(spec=build_decode_spec("llm-decode-tiny"),
                                prefill=PREFILL, decode_steps=DECODE_STEPS)
    requests = decode_burst([session], SESSIONS)

    unbatched = ContinuousServer(n_clusters=1, farm=farm,
                                 batch_cap=1).simulate(requests)

    def batched_run():
        return ContinuousServer(n_clusters=1, farm=farm,
                                batch_cap=BATCH_CAP).simulate(requests)

    batched_run()  # warm the shared farm cache before timing
    batched = benchmark(batched_run)

    speedup = unbatched.makespan_cycles / batched.makespan_cycles
    print_series(
        "continuous batching: decode burst on one cluster",
        ["batch cap", "makespan cycles", "steps", "batched steps",
         "mean occupancy"],
        [
            [1, unbatched.makespan_cycles, unbatched.decode_steps,
             unbatched.decode_batched_steps, unbatched.decode_mean_occupancy],
            [BATCH_CAP, batched.makespan_cycles, batched.decode_steps,
             batched.decode_batched_steps, batched.decode_mean_occupancy],
        ],
    )

    assert unbatched.decode_sessions == SESSIONS
    assert batched.decode_sessions == SESSIONS
    # The unbatched server never coalesces; the batched one fills its cap.
    assert unbatched.decode_max_occupancy == 1
    assert batched.decode_max_occupancy == BATCH_CAP
    assert batched.decode_batched_steps > 0

    # The gate: continuous batching must at least halve the makespan.
    assert speedup >= 2.0, (
        f"batched decode only {speedup:.2f}x faster than unbatched")

    record_info(benchmark, {
        "sessions": SESSIONS,
        "batch_cap": BATCH_CAP,
        "speedup": speedup,
        "batched_fraction": batched.decode_batched_fraction,
        "mean_occupancy": batched.decode_mean_occupancy,
        "unbatched_makespan": unbatched.makespan_cycles,
        "batched_makespan": batched.makespan_cycles,
    }, name="decode_batching")
