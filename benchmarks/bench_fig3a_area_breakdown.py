"""Fig. 3a -- RedMulE area breakdown.

Paper reference: the standalone accelerator occupies 0.07 mm2 in 22 nm (14 %
of the 0.5 mm2 cluster) and the FMA datapath dominates the breakdown.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig3 import area_breakdown, cluster_area_breakdown


def test_fig3a_redmule_area_breakdown(benchmark):
    breakdown = benchmark(area_breakdown)

    print_series(
        "Fig. 3a - RedMulE area breakdown (22 nm)",
        ["component", "area mm2", "share %"],
        [(name, value, 100.0 * share) for name, value, share in breakdown.as_rows()],
    )
    record_info(benchmark, {
        "total_mm2": breakdown.total,
        "paper_total_mm2": 0.07,
        "datapath_share": breakdown.share("datapath (FMAs)"),
    })

    assert abs(breakdown.total - 0.07) / 0.07 < 0.05
    assert breakdown.share("datapath (FMAs)") > 0.5


def test_fig3a_cluster_area_breakdown(benchmark):
    breakdown = benchmark(cluster_area_breakdown)

    print_series(
        "Fig. 3a (companion) - PULP cluster area breakdown (22 nm)",
        ["component", "area mm2", "share %"],
        [(name, value, 100.0 * share) for name, value, share in breakdown.as_rows()],
    )
    record_info(benchmark, {
        "cluster_mm2": breakdown.total,
        "redmule_share": breakdown.share("RedMulE"),
        "paper_cluster_mm2": 0.5,
        "paper_redmule_share": 0.14,
    })

    assert abs(breakdown.total - 0.5) / 0.5 < 0.05
    assert abs(breakdown.share("RedMulE") - 0.14) < 0.02
