"""Benchmark harness: one module per table / figure of the paper."""
