"""Million-request serving benchmark: the continuous event loop, warm.

The headline run streams ``SERVE_MILLION_REQUESTS`` requests (default 10^6;
CI smokes at 10^4) through :class:`repro.serve.ContinuousServer` with the
``serve-million`` tenant mix -- FP16 interactive + batch tenants next to an
FP8-routed throughput tenant -- on a pool sized for ~75 % utilisation.
Four properties are asserted:

* **conservation** -- a single request on a single cluster has exactly the
  serial makespan :meth:`SimulationFarm.time_program` reports, for the FP16
  models and for the FP8-routed one (through the derived per-precision
  farm);
* **hot-path speed** -- at the full 10^6 scale the warm loop (service-time
  memo primed, farm never re-entered) must sustain >= 100k simulated
  requests per wall-clock second, generation included;
* **streaming-percentile fidelity** -- the deterministic-reservoir p99 must
  fall inside the exact sample's [98.3 %, 99.7 %] rank window and the p50
  inside [47 %, 53 %] (about +-4.5 sigma of the 4096-sample estimator on
  both counts);
* **memo effectiveness** -- the warm run resolves >= 99.9 % of service
  lookups from the memo.

A second, fixed-scale test exercises the production policies: bursty MMPP
arrivals with SLO-aware admission and queue/p99-driven autoscaling, which
must scale the pool up and beat the fixed minimum pool's p99.

Wall-clock is tracked by ``pytest-benchmark`` on a fixed 10^4-request run so
the committed wall budget is scale-independent.
"""

import math
import os
import time

from benchmarks.conftest import print_series, record_info
from repro.experiments.serve import million_tenants
from repro.farm import SimulationFarm
from repro.serve import (
    AdmissionPolicy,
    AutoscalePolicy,
    ContinuousServer,
    Request,
    RequestGenerator,
)
from repro.serve.scheduler import derive_precision_farm

#: Headline request volume; CI smokes at 10^4 via the environment variable.
N_REQUESTS = int(os.environ.get("SERVE_MILLION_REQUESTS", "1000000"))

#: The >= 100k req/s wall-clock gate applies at the full 10^6 scale only
#: (short smoke runs pay their fixed costs without amortising them).
GATE_AT_REQUESTS = 1_000_000
MIN_REQ_PER_SECOND = 100_000.0

#: Aggregate simulated arrival rate; the traffic window stretches with N.
AGGREGATE_RPS = 100_000.0

#: Pool sizing target: offered erlangs / clusters.
TARGET_UTILISATION = 0.75

#: Rank windows of the streaming-percentile fidelity assertion.
P99_RANK_WINDOW = (0.983, 0.997)
P50_RANK_WINDOW = (0.47, 0.53)


def _exact_rank(ordered, quantile):
    rank = min(len(ordered), max(1, math.ceil(quantile * len(ordered))))
    return float(ordered[rank - 1])


def _pool_size(server, tenants):
    """Clusters needed to keep the offered load at the target utilisation."""
    load = 0.0
    for tenant in tenants:
        mean_service = sum(
            weight * server.service_cycles(model.graph, tenant.precision)
            for model, weight in zip(tenant.models, tenant.mix_weights))
        load += tenant.rps * mean_service / server.frequency_hz
    return max(1, math.ceil(load / TARGET_UTILISATION))


def test_serve_million_event_loop(benchmark):
    farm = SimulationFarm(backend="model", max_workers=1)
    tenants = million_tenants(AGGREGATE_RPS)

    # Conservation: one request on one cluster == the serial farm timing,
    # FP16 and FP8-routed alike.
    for tenant in tenants:
        for model in tenant.models:
            single = ContinuousServer(n_clusters=1, farm=farm,
                                      backend="model")
            report = single.simulate(
                [Request(0, tenant.name, model.name, model.graph, 0,
                         precision=tenant.precision)])
            timing_farm = (derive_precision_farm(farm, tenant.precision)
                           if tenant.precision else farm)
            program = model.graph.lower(config=timing_farm.config)
            serial = int(round(timing_farm.time_program(program).cycles))
            assert report.makespan_cycles == serial, (
                f"{model.name}@{tenant.precision or 'default'}: continuous "
                f"makespan {report.makespan_cycles} != serial {serial}")

    server = ContinuousServer(n_clusters=1, farm=farm, backend="model")
    clusters = _pool_size(server, tenants)
    generator = RequestGenerator(tenants, seed=0)
    duration_s = N_REQUESTS / generator.total_rps

    def fresh_server(keep_latencies=False):
        made = ContinuousServer(n_clusters=clusters, farm=farm,
                                backend="model",
                                keep_latencies=keep_latencies)
        # Prime the service memo so the measured run is warm end to end.
        for tenant in tenants:
            for model in tenant.models:
                made.service_cycles(model.graph, tenant.precision)
        return made

    fresh_server()  # warm the farm's timing cache

    # Headline: the full-scale run, measured once (generation included).
    warm = fresh_server(keep_latencies=True)
    memo_misses_before = warm.memo_misses
    start = time.perf_counter()
    report = warm.simulate(generator.stream(duration_s),
                           scenario="serve-million")
    wall_s = time.perf_counter() - start
    req_per_second = report.offered / wall_s

    assert report.completed == report.offered, (
        f"unbounded queue must complete everything: {report.completed} "
        f"of {report.offered}")
    assert warm.memo_misses == memo_misses_before, (
        "warm run must never miss the service memo")
    assert report.memo_hit_rate >= 0.999
    if N_REQUESTS >= GATE_AT_REQUESTS:
        assert req_per_second >= MIN_REQ_PER_SECOND, (
            f"warm loop sustained only {req_per_second:,.0f} simulated "
            f"req/s over {report.offered} requests "
            f"(gate: {MIN_REQ_PER_SECOND:,.0f})")

    # Streaming-percentile fidelity against the exact sorted sample.
    exact = sorted(warm.latencies)
    p99_low, p99_high = (_exact_rank(exact, q) for q in P99_RANK_WINDOW)
    p50_low, p50_high = (_exact_rank(exact, q) for q in P50_RANK_WINDOW)
    assert p99_low <= report.latency.p99 <= p99_high, (
        f"reservoir p99 {report.latency.p99:.0f} outside exact rank window "
        f"[{p99_low:.0f}, {p99_high:.0f}]")
    assert p50_low <= report.latency.p50 <= p50_high, (
        f"reservoir p50 {report.latency.p50:.0f} outside exact rank window "
        f"[{p50_low:.0f}, {p50_high:.0f}]")

    # Wall-clock record on a fixed-size run (stable across N overrides).
    bench_duration_s = min(duration_s, 10_000 / generator.total_rps)
    benchmark(lambda: fresh_server().simulate(
        generator.stream(bench_duration_s)))

    exact_p99 = _exact_rank(exact, 0.99)
    print_series(
        "continuous serving at scale (warm, generation included)",
        ["requests", "clusters", "wall s", "sim req/s", "p50 cyc",
         "p99 cyc (stream)", "p99 cyc (exact)", "memo hit %"],
        [[report.offered, clusters, f"{wall_s:.2f}",
          f"{req_per_second:,.0f}", report.latency.p50, report.latency.p99,
          exact_p99, 100 * report.memo_hit_rate]],
    )

    record_info(benchmark, {
        "requests": report.offered,
        "clusters_lower_bound": clusters,
        "sim_req_per_second": req_per_second,
        "p50_cycles": report.latency.p50,
        "p99_cycles": report.latency.p99,
        "memo_hit_rate": report.memo_hit_rate,
        "mean_utilisation": report.utilisation,
    }, name="serve_million")


def test_serve_million_autoscale_and_admission(benchmark):
    """Bursty arrivals + SLO admission + autoscaling (fixed small scale)."""
    farm = SimulationFarm(backend="model", max_workers=1)
    tenants = million_tenants(AGGREGATE_RPS)
    generator = RequestGenerator(tenants, seed=3)
    duration_s = 5_000 / generator.total_rps
    sizing = ContinuousServer(n_clusters=1, farm=farm, backend="model")
    capacity = _pool_size(sizing, tenants)
    frequency_hz = generator.frequency_hz
    slo_cycles = 2e-3 * frequency_hz  # 2 ms p99 target

    def run(autoscale):
        autoscaler = AutoscalePolicy(
            min_clusters=max(1, capacity // 4),
            max_clusters=capacity * 2,
            interval_cycles=max(1, int(0.0005 * frequency_hz)),
            queue_per_cluster=4,
            provision_delay_cycles=int(0.0002 * frequency_hz),
            slo_p99_cycles=slo_cycles,
        ) if autoscale else None
        server = ContinuousServer(
            n_clusters=max(1, capacity // 4), farm=farm, backend="model",
            admission=AdmissionPolicy(max_queue=512,
                                      slo_p99_cycles=slo_cycles),
            autoscaler=autoscaler,
        )
        return server.simulate(generator.stream(duration_s, "bursty"),
                               scenario="serve-million-bursty")

    fixed = run(autoscale=False)
    scaled = benchmark(lambda: run(autoscale=True))

    assert scaled.offered == fixed.offered
    assert scaled.completed + scaled.rejected == scaled.offered
    assert scaled.pool.scale_ups > 0, "bursts must trigger scale-up"
    assert scaled.pool.max_clusters > scaled.pool.initial_clusters
    assert scaled.latency.p99 < fixed.latency.p99, (
        "autoscaling must beat the fixed minimum pool's p99")
    assert scaled.completed > fixed.completed, (
        "capacity added under burst must convert rejections to completions")

    p99_gain = fixed.latency.p99 / scaled.latency.p99
    print_series(
        "bursty traffic: fixed minimum pool vs autoscaled pool",
        ["pool", "completed", "rejected", "p99 cyc", "final clusters",
         "scale ups"],
        [
            ["fixed", fixed.completed, fixed.rejected, fixed.latency.p99,
             fixed.pool.final_clusters, fixed.pool.scale_ups],
            ["autoscaled", scaled.completed, scaled.rejected,
             scaled.latency.p99, scaled.pool.final_clusters,
             scaled.pool.scale_ups],
        ],
    )

    record_info(benchmark, {
        "requests": scaled.offered,
        "completed": scaled.completed,
        "scale_ups": scaled.pool.scale_ups,
        "speedup_autoscale_p99": p99_gain,
        "rejected_fraction": scaled.rejection_rate,
    }, name="serve_autoscale")
