"""Fig. 4b -- RedMulE area sweep as a function of H and L (P = 3).

Paper reference: the accelerator's area becomes comparable to the whole PULP
cluster with 256 FMAs (H=8, L=32) and doubles it with 512 FMAs (H=16, L=32);
growing H from 4 to 5 requires two extra 32-bit memory ports.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig4 import area_sweep
from repro.power.area import AreaModel


def test_fig4b_area_sweep(benchmark):
    records = benchmark(area_sweep)

    print_series(
        "Fig. 4b - RedMulE area vs (H, L) at P=3",
        ["H", "L", "FMAs", "mem ports", "area mm2", "area / cluster"],
        [
            (r["H"], r["L"], r["n_fma"], r["n_mem_ports"], r["area_mm2"],
             r["area_vs_cluster"])
            for r in records
        ],
    )

    by_fma = {r["n_fma"]: r for r in records}
    record_info(benchmark, {
        "area_32_fma_mm2": by_fma[32]["area_mm2"],
        "area_256_fma_vs_cluster": by_fma[256]["area_vs_cluster"],
        "area_512_fma_vs_cluster": by_fma[512]["area_vs_cluster"],
        "paper_area_32_fma_mm2": 0.07,
        "paper_area_256_fma_vs_cluster": 1.0,
        "paper_area_512_fma_vs_cluster": 2.0,
    })

    assert abs(by_fma[32]["area_mm2"] - 0.07) / 0.07 < 0.05
    assert abs(by_fma[256]["area_vs_cluster"] - 1.0) < 0.1
    assert abs(by_fma[512]["area_vs_cluster"] - 2.0) < 0.15


def test_fig4b_port_growth_with_h(benchmark):
    """The memory-port pressure statement of the 'parametric area swipe'."""
    shapes = [(h, 8) for h in range(2, 17)]
    records = benchmark(AreaModel.sweep, shapes)

    print_series(
        "Fig. 4b (companion) - memory ports vs H (L=8, P=3)",
        ["H", "FMAs", "mem ports", "area mm2"],
        [(r["H"], r["n_fma"], r["n_mem_ports"], r["area_mm2"]) for r in records],
    )

    by_h = {r["H"]: r for r in records}
    record_info(benchmark, {
        "ports_h4": by_h[4]["n_mem_ports"],
        "ports_h5": by_h[5]["n_mem_ports"],
    })
    assert by_h[4]["n_mem_ports"] == 9
    assert by_h[5]["n_mem_ports"] == 11
