"""Ablation -- array shape (H, L) at iso-FMA-count.

The paper chooses H=4, L=8 for the 32-FMA instance.  This ablation compares
alternative shapes with the same number of FMAs: taller arrays (larger L)
need more X-buffer lines per tile but fewer K tiles, wider arrays (larger H)
need more memory ports.  The workloads are the auto-encoder training GEMMs,
where the skewed shapes make the difference visible.
"""

from benchmarks.conftest import print_series, record_info
from repro.perf.metrics import time_workload_hw
from repro.redmule.config import RedMulEConfig
from repro.workloads.autoencoder import autoencoder_training_gemms


def _sweep(shapes, batch):
    gemms = [g.shape for g in autoencoder_training_gemms(batch)]
    records = []
    for height, length in shapes:
        config = RedMulEConfig(height=height, length=length, pipeline_regs=3)
        timing = time_workload_hw(gemms, config)
        records.append(
            {
                "H": height,
                "L": length,
                "n_fma": config.n_fma,
                "n_ports": config.n_mem_ports,
                "cycles": timing.cycles,
                "macs_per_cycle": timing.macs_per_cycle,
            }
        )
    return records


def test_ablation_array_shape_iso_fma(benchmark):
    shapes = [(2, 16), (4, 8), (8, 4), (16, 2)]
    records = benchmark(_sweep, shapes, 16)

    print_series(
        "Ablation - 32-FMA array shapes on the batch-16 AutoEncoder step",
        ["H", "L", "FMAs", "mem ports", "cycles", "MAC/cycle"],
        [
            (r["H"], r["L"], r["n_fma"], r["n_ports"], r["cycles"],
             r["macs_per_cycle"])
            for r in records
        ],
    )

    by_shape = {(r["H"], r["L"]): r for r in records}
    record_info(benchmark, {
        "reference_macs_per_cycle": by_shape[(4, 8)]["macs_per_cycle"],
        "widest_ports": by_shape[(16, 2)]["n_ports"],
    })

    # All shapes have the same peak; the paper's H=4/L=8 must be competitive
    # (within 10 % of the best of these shapes).
    best = max(r["macs_per_cycle"] for r in records)
    assert by_shape[(4, 8)]["macs_per_cycle"] > 0.9 * best
    # The memory-port cost grows with H: wider arrays buy their bandwidth
    # with many extra 32-bit ports, which is what limits H in the paper.
    ports = [by_shape[(h, l)]["n_ports"] for h, l in shapes]
    assert ports == sorted(ports)
    assert by_shape[(16, 2)]["n_ports"] > 3 * by_shape[(4, 8)]["n_ports"]
