"""Table I -- state-of-the-art comparison ("Our work" rows).

Regenerates the PULP+RedMulE rows of Table I from the area / power /
performance models and prints them next to the paper's reported values.

Paper reference values:
  22 nm, 0.65 V: 0.5 mm2, 476 MHz, 43.5 mW, 30 GOPS, 688 GOPS/W
  22 nm, 0.80 V: 0.5 mm2, 666 MHz, 90.7 mW, 42 GOPS, 462 GOPS/W
  65 nm, 1.2 V : 3.85 mm2, 200 MHz, 89.1 mW, 12.6 GOPS, 152 GOPS/W
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.table1 import build_table1, our_rows_as_dicts
from repro.perf.comparison import PAPER_OUR_WORK


def test_table1_our_work_rows(benchmark):
    rows = benchmark(our_rows_as_dicts)

    paper_keys = ["22nm-efficiency", "22nm-performance", "65nm"]
    printable = []
    for row, key in zip(rows, paper_keys):
        paper = PAPER_OUR_WORK[key]
        printable.append([
            row["design"],
            row["area_mm2"], paper["area_mm2"],
            row["power_mw"], paper["power_mw"],
            row["performance_gops"], paper["performance_gops"],
            row["efficiency_gops_w"], paper["efficiency_gops_w"],
        ])
    print_series(
        "Table I - PULP + RedMulE rows (measured vs paper)",
        ["design", "area mm2", "paper", "power mW", "paper",
         "GOPS", "paper", "GOPS/W", "paper"],
        printable,
    )
    record_info(benchmark, {
        "efficiency_gops_w_0v65": rows[0]["efficiency_gops_w"],
        "power_mw_0v65": rows[0]["power_mw"],
        "efficiency_gops_w_0v80": rows[1]["efficiency_gops_w"],
        "paper_efficiency_0v65": 688,
    })

    assert abs(rows[0]["efficiency_gops_w"] - 688) / 688 < 0.05


def test_table1_full_table(benchmark):
    table = benchmark(build_table1)
    assert len(table["soa_rows"]) + len(table["our_rows"]) == 12
