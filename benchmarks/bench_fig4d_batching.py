"""Fig. 4d -- effect of batching on the AutoEncoder training workload.

Paper reference: moving from batch 1 to batch 16 improves RedMulE's
throughput by almost 16x while the software baseline does not scale, lifting
the overall speedup from 2.6x to 24.4x; the batch-16 working set (184 kB)
still fits the L2 memory of a typical PULP system.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig4 import autoencoder_batching


def test_fig4d_batching_effect(benchmark):
    records = benchmark(autoencoder_batching, (1, 16))

    print_series(
        "Fig. 4d - AutoEncoder training, batch 1 vs 16",
        ["batch", "HW cycles", "SW cycles", "speedup", "HW MAC/cyc",
         "SW MAC/cyc", "HW throughput vs B=1", "activations kB"],
        [
            (r["batch"], r["hw_cycles"], r["sw_cycles"], r["speedup"],
             r["hw_macs_per_cycle"], r["sw_macs_per_cycle"],
             r["hw_throughput_vs_b1"], r["activation_footprint_kb"])
            for r in records
        ],
    )

    b1, b16 = records
    record_info(benchmark, {
        "speedup_b1": b1["speedup"],
        "speedup_b16": b16["speedup"],
        "hw_throughput_gain": b16["hw_throughput_vs_b1"],
        "paper_speedup_b1": 2.6,
        "paper_speedup_b16": 24.4,
        "paper_hw_throughput_gain": 16.0,
        "activation_footprint_kb_b16": b16["activation_footprint_kb"],
    })

    # Shape of the paper's claim: batching lifts the accelerator by an order
    # of magnitude while the software baseline stays roughly flat.
    assert abs(b1["speedup"] - 2.6) / 2.6 < 0.1
    assert b16["speedup"] > 15
    assert b16["hw_throughput_vs_b1"] > 8
    assert b16["sw_macs_per_cycle"] < 2 * b1["sw_macs_per_cycle"]
    assert b16["activation_footprint_kb"] < 200


def test_fig4d_batch_size_sweep(benchmark):
    """Extension: intermediate batch sizes show where the gain saturates."""
    records = benchmark(autoencoder_batching, (1, 2, 4, 8, 16, 32))

    print_series(
        "Fig. 4d (extension) - speedup vs batch size",
        ["batch", "speedup", "HW MAC/cyc"],
        [(r["batch"], r["speedup"], r["hw_macs_per_cycle"]) for r in records],
    )

    speedups = [r["speedup"] for r in records]
    record_info(benchmark, {"speedups": speedups})
    assert speedups == sorted(speedups)
    # Going from 16 to 32 keeps improving, but by far less than 1 -> 16.
    assert speedups[-1] / speedups[-2] < speedups[-2] / speedups[0]
