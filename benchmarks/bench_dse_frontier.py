"""DSE acceptance benchmark: analytic sweep speed and frontier fidelity.

Sweeps a >= 1000-point design space (array geometry x W prefetch x memory
latency x TCDM banks) over the ``mlp-tiny`` training graph through the
``analytic`` farm backend and asserts the two properties the subsystem
exists for:

* **speed** -- the sweep completes >= 50x faster than the cycle-accurate
  engine path would.  The engine cost is projected from a deterministic
  sample of design points timed end to end (fresh cache, serial farm); the
  asserted ratio is additionally divided by an assumed ideal 8-wide process
  pool, so the bound holds even against the farm's parallel engine path;
* **fidelity** -- the axes are chosen inside the cycle model's provably
  exact (uncontended wide port) domain, so every point is trusted and the
  engine cross-validation of the sampled Pareto frontier measures <= 5 %
  cycle error (0 % expected).

Wall-clock speed of the sweep itself is tracked by ``pytest-benchmark``.
"""

import time

from benchmarks.conftest import print_series, record_info
from repro.dse import DesignSpace, cross_validate, sweep
from repro.farm import BACKEND_ENGINE, SimulationFarm
from repro.graph import build_model

#: Axes of the benchmark space: 3 * 3 * 3 * 2 * 5 * 4 = 1080 points, all
#: inside the exact-model domain for the mlp-tiny job mix (worst case
#: H=4, P=2, L=8: per-window demand H + L = 12 <= block_k = 12).
AXES = dict(
    height=(4, 6, 8),
    length=(2, 4, 8),
    pipeline_regs=(2, 3, 4),
    w_prefetch_lines=(1, 2),
    memory_latency=(0, 1, 2, 4, 8),
    tcdm_banks=(8, 16, 32, 64),
)

WORKLOAD = "mlp-tiny"

#: Design points timed on the engine to project the full-sweep engine cost.
ENGINE_SAMPLE_POINTS = 3

#: Pool width assumed when discounting the serial engine measurement.
ASSUMED_POOL_WIDTH = 8

MIN_POINTS = 1000
MIN_SPEEDUP = 50.0
MAX_CYCLE_ERROR = 0.05


def _engine_seconds_per_point(result) -> float:
    """Mean wall seconds to time one design point's program on the engine.

    Samples distinct configurations spread across the sweep, each timed the
    way an engine-backed sweep would run it: the point's lowered program
    through a fresh serial farm (within-point shape reuse still cached).
    """
    distinct = []
    seen = set()
    for point in result.points:
        if point.point.config not in seen:
            seen.add(point.point.config)
            distinct.append(point)
    stride = max(1, len(distinct) // ENGINE_SAMPLE_POINTS)
    sampled = distinct[::stride][:ENGINE_SAMPLE_POINTS]

    total = 0.0
    for dse_point in sampled:
        config = dse_point.point.config
        program = result.graph.lower(config=config, tile=result.tile)
        farm = SimulationFarm(config=config, backend=BACKEND_ENGINE,
                              max_workers=1)
        started = time.perf_counter()
        farm.run(program.jobs)
        total += time.perf_counter() - started
    return total / len(sampled)


def test_dse_frontier_speedup_and_fidelity(benchmark):
    space = DesignSpace.grid(**AXES)
    graph = build_model(WORKLOAD)

    result = benchmark.pedantic(
        lambda: sweep(space, graph, name="bench-frontier"),
        rounds=1, iterations=1,
    )

    assert len(result) >= MIN_POINTS, f"only {len(result)} points swept"
    untrusted = len(result.points) - len(result.trusted_points)
    assert untrusted == 0, (
        f"{untrusted} points fell outside the exact model domain; the "
        "benchmark axes are meant to stay inside it"
    )

    # Speed: project the engine path from sampled points and discount by an
    # ideal process pool before asserting the 50x bound.
    engine_per_point = _engine_seconds_per_point(result)
    projected_engine_s = engine_per_point * len(result)
    speedup_serial = projected_engine_s / result.wall_clock_s
    speedup_pooled = speedup_serial / ASSUMED_POOL_WIDTH
    assert speedup_pooled >= MIN_SPEEDUP, (
        f"analytic sweep only {speedup_pooled:.0f}x faster than an "
        f"{ASSUMED_POOL_WIDTH}-wide engine pool would be "
        f"({speedup_serial:.0f}x vs serial engine)"
    )

    # Fidelity: engine cross-validation of the sampled trusted frontier.
    report = cross_validate(result, sample=3, tolerance=MAX_CYCLE_ERROR,
                            max_workers=1, trusted_only=True)
    assert report.jobs_checked > 0
    assert report.max_rel_error <= MAX_CYCLE_ERROR, report.describe()

    frontier = result.pareto(trusted_only=True)
    print_series(
        "DSE sweep: analytic backend vs projected engine path",
        ["points", "sweep s", "engine s/point", "projected engine s",
         "speedup (serial)", f"speedup (/{ASSUMED_POOL_WIDTH} pool)",
         "frontier", "max err %"],
        [[
            len(result), round(result.wall_clock_s, 3),
            round(engine_per_point, 3), round(projected_engine_s, 1),
            round(speedup_serial, 0), round(speedup_pooled, 0),
            len(frontier), round(100 * report.max_rel_error, 3),
        ]],
    )

    record_info(benchmark, {
        "n_points": len(result),
        "sweep_wall_s": result.wall_clock_s,
        "points_per_second": result.points_per_second,
        "engine_wall_s_per_point": engine_per_point,
        "analytic_speedup_serial": speedup_serial,
        "analytic_speedup_pooled": speedup_pooled,
        "frontier_size": len(frontier),
        "max_cycle_error": report.max_rel_error,
        "validated_jobs": report.jobs_checked,
        "cache_hit_rate": result.cache_hit_rate,
    }, name="dse_frontier")
