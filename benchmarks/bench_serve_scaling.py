"""Serving-scheduler scaling benchmark: throughput vs. cluster-pool size.

A saturation burst of mixed-model requests (the three-tenant ``serve-mix``
composition, scaled down) is served on growing cluster pools sharing one
simulation farm.  Two properties are asserted:

* **scaling** -- simulated throughput (requests per simulated cycle) grows
  at least 3x from 1 to 4 clusters: the burst holds plenty of independent
  requests, so the dependency-aware scheduler should keep all four
  clusters busy (losses come only from critical-path tails);
* **caching** -- after a warm-up run has memoised every distinct GEMM
  shape, the measured runs serve >90 % of their timing lookups from the
  shape-keyed cache, which is what makes serving simulation cheap enough
  to sweep.

Wall-clock speed is tracked by ``pytest-benchmark`` on the 4-cluster run.
"""

from benchmarks.conftest import print_series, record_info
from repro.farm import SimulationFarm
from repro.graph import build_model
from repro.serve import ModelSpec, RequestGenerator, ServingSimulator, TenantSpec

#: Pool sizes of the scaling series.
POOL_SIZES = (1, 2, 4)

#: Burst size per tenant (3 tenants -> 3x this many requests).  Deep enough
#: that the tail imbalance of the last few big requests stays small next to
#: the saturated middle of the run.
PER_TENANT = 16


def _tenants():
    return (
        TenantSpec(
            name="anomaly-detection",
            models=(
                ModelSpec("autoencoder-b1", build_model("autoencoder-b1"),
                          weight=2.0),
                ModelSpec("mlp-tiny", build_model("mlp-tiny")),
            ),
            rps=100.0,
        ),
        TenantSpec(
            name="vision-nlp",
            models=(
                ModelSpec("transformer-tiny", build_model("transformer-tiny")),
                ModelSpec("conv-tiny", build_model("conv-tiny")),
            ),
            rps=60.0,
        ),
        TenantSpec(
            name="time-series",
            models=(
                ModelSpec("lstm-tiny", build_model("lstm-tiny")),
                ModelSpec("gru-tiny", build_model("gru-tiny")),
            ),
            rps=40.0,
        ),
    )


def test_serve_throughput_scales_with_clusters(benchmark):
    farm = SimulationFarm(backend="model", max_workers=1)
    requests = RequestGenerator(_tenants(), seed=0).burst(PER_TENANT)

    # Warm-up: memoise every distinct shape of the request mix.
    ServingSimulator(n_clusters=1, farm=farm).simulate(requests)

    reports = {}
    for pool in POOL_SIZES:
        if pool == max(POOL_SIZES):
            report = benchmark(
                lambda pool=pool: ServingSimulator(n_clusters=pool,
                                                   farm=farm).simulate(requests)
            )
        else:
            report = ServingSimulator(n_clusters=pool,
                                      farm=farm).simulate(requests)
        reports[pool] = report

    print_series(
        "serving throughput vs. cluster-pool size (saturation burst)",
        ["clusters", "makespan cycles", "req/Mcycle", "speedup",
         "mean util %", "cache hit %"],
        [
            [
                pool,
                reports[pool].makespan_cycles,
                reports[pool].throughput_per_mcycle,
                reports[1].makespan_cycles / reports[pool].makespan_cycles,
                100 * reports[pool].mean_utilisation,
                100 * reports[pool].cache_hit_rate,
            ]
            for pool in POOL_SIZES
        ],
    )

    # Every pool size serves the full burst.
    for report in reports.values():
        assert report.completed == len(requests)

    # >= 3x simulated throughput going 1 -> 4 clusters on the mixed burst.
    speedup = (reports[1].makespan_cycles
               / reports[max(POOL_SIZES)].makespan_cycles)
    assert speedup >= 3.0, f"1->4 cluster speedup only {speedup:.2f}x"

    # After warm-up every measured run must hit the cache >90 % of the time.
    for pool, report in reports.items():
        assert report.cache_hit_rate > 0.90, (
            f"{pool}-cluster run hit rate {report.cache_hit_rate:.2%}"
        )

    record_info(benchmark, {
        "requests": len(requests),
        "speedup_1_to_4": speedup,
        "hit_rate": reports[max(POOL_SIZES)].cache_hit_rate,
        "mean_utilisation_4c": reports[max(POOL_SIZES)].mean_utilisation,
    })
