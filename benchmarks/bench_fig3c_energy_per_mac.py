"""Fig. 3c -- cluster energy per MAC operation vs. matrix size.

Paper reference: the energy per FMA operation decreases considerably as the
amount of computation grows (utilisation increases); at high utilisation the
cluster spends about 43.5 mW / (31.6 MAC/cycle x 476 MHz) = 2.9 pJ per MAC.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig3 import energy_per_mac_sweep


def test_fig3c_energy_per_mac_sweep(benchmark):
    records = benchmark(energy_per_mac_sweep)

    print_series(
        "Fig. 3c - cluster energy per MAC vs square matrix size (0.65 V)",
        ["size", "MACs", "utilisation", "energy/MAC pJ", "GFLOPS/W"],
        [
            (r["size"], r["macs"], r["utilisation"], r["energy_per_mac_pj"],
             r["efficiency_gflops_w"])
            for r in records
        ],
    )

    energies = [r["energy_per_mac_pj"] for r in records]
    record_info(benchmark, {
        "energy_per_mac_small_pj": energies[0],
        "energy_per_mac_large_pj": energies[-1],
        "paper_energy_per_mac_large_pj": 2.9,
        "peak_efficiency_gflops_w": records[-1]["efficiency_gflops_w"],
        "paper_peak_efficiency_gflops_w": 688,
    })

    # The paper's qualitative claim: energy/MAC decreases monotonically with
    # the computational burden and bottoms out around 2.9 pJ.
    assert energies == sorted(energies, reverse=True)
    assert abs(energies[-1] - 2.9) / 2.9 < 0.05
    assert abs(records[-1]["efficiency_gflops_w"] - 688) / 688 < 0.05
