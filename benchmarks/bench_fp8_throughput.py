"""Benchmark -- FP8 elements-per-line throughput win vs FP16, equal geometry.

The acceptance bar of the multi-precision generalisation: at *identical*
array geometry (H=4, L=8, P=3) and identical port width, the FP8 formats
pack two elements into every 16-bit line slot, so a line carries twice the
operands, tiles cover twice the output columns and the engine finishes the
same GEMM in roughly half the cycles.  This benchmark runs the engine on an
equal-geometry FP16/FP8 pair, asserts the cycle advantage, re-checks that
scalar and SIMD bit-exact backends still agree bitwise in FP8, and pins the
analytic model's bit-exactness (``is_exact``) on the FP8 reference domain.
"""

from benchmarks.conftest import print_series, record_info
from repro.farm import config_key, run_functional_job
from repro.redmule.config import RedMulEConfig
from repro.redmule.job import MatmulJob
from repro.redmule.perf_model import RedMulEPerfModel

#: Engine-eligible GEMM shapes (M, N, K).
SHAPES = [(16, 16, 32), (32, 32, 64), (24, 48, 96)]

#: Required cycle advantage of FP8 over FP16 on the largest shape (the
#: asymptotic advantage is 2x; small shapes amortise less).
MIN_LARGE_SHAPE_SPEEDUP = 1.8


def _cycles(fmt: str, shape, backend: str = "fast"):
    key = config_key(RedMulEConfig(format=fmt))
    cycles, z_image = run_functional_job(key, *shape, False, backend,
                                         seed=shape[0])
    return cycles, z_image


def test_fp8_throughput(benchmark):
    def run_all():
        rows = []
        for shape in SHAPES:
            fp16_cycles, _ = _cycles("fp16", shape)
            fp8_cycles, fp8_fast = _cycles("fp8-e4m3", shape)
            # Bit-exactness spot check: the scalar oracle and the SIMD
            # backend must agree on the FP8 result image.
            _, exact_bits = _cycles("fp8-e4m3", shape, backend="exact")
            _, simd_bits = _cycles("fp8-e4m3", shape, backend="exact-simd")
            assert exact_bits == simd_bits, f"FP8 bit mismatch on {shape}"
            # Analytic model: bit-exact on the FP8 reference domain.
            config = RedMulEConfig(format="fp8-e4m3")
            job = MatmulJob(x_addr=0, w_addr=0, z_addr=0,
                            m=shape[0], n=shape[1], k=shape[2],
                            element_bytes=1)
            model = RedMulEPerfModel(config)
            assert model.is_exact(job)
            assert model.estimate(job).cycles == fp8_cycles
            rows.append((shape, fp16_cycles, fp8_cycles,
                         fp16_cycles / fp8_cycles))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_series(
        "FP8 (E4M3) vs FP16 engine cycles -- equal H=4 L=8 P=3 geometry",
        ["shape (M,N,K)", "fp16 cycles", "fp8 cycles", "advantage"],
        [(str(shape), fp16, fp8, f"{ratio:.2f}x")
         for shape, fp16, fp8, ratio in rows],
    )

    largest = rows[-1]
    record_info(benchmark, {
        "fp16_cycles_large": largest[1],
        "fp8_cycles_large": largest[2],
        "fp8_speedup_large": largest[3],
    }, name="fp8_throughput")
    assert largest[3] >= MIN_LARGE_SHAPE_SPEEDUP, (
        f"FP8 advantage {largest[3]:.2f}x below the required "
        f"{MIN_LARGE_SHAPE_SPEEDUP:.1f}x"
    )
