"""Ablation -- TCDM contention between RedMulE and the cluster cores.

The paper's headline numbers are measured with the cores idle while RedMulE
runs.  This ablation uses the cycle-accurate engine and injects concurrent
core traffic on the logarithmic branch to measure how much the accelerator
slows down, and how the HCI's starvation-free rotation bounds the effect.
"""

from benchmarks.conftest import print_series, record_info
from repro.fp.vector import random_fp16_matrix
from repro.interco.hci import Hci, HciConfig
from repro.interco.log_interco import CoreRequest
from repro.mem.layout import MemoryAllocator
from repro.mem.tcdm import Tcdm
from repro.redmule.config import RedMulEConfig
from repro.redmule.engine import RedMulE
from repro.redmule.job import MatmulJob


def _run_with_traffic(n_noisy_cores: int, max_wide_streak: int) -> dict:
    tcdm = Tcdm()
    hci = Hci(tcdm, HciConfig(max_wide_streak=max_wide_streak))
    engine = RedMulE(RedMulEConfig.reference(), hci, exact=False)
    allocator = MemoryAllocator(tcdm.base, tcdm.size)

    x = random_fp16_matrix(16, 64, scale=0.25, seed=0)
    w = random_fp16_matrix(64, 32, scale=0.25, seed=1)
    hx = allocator.alloc_matrix(16, 64, "X")
    hw = allocator.alloc_matrix(64, 32, "W")
    hz = allocator.alloc_matrix(16, 32, "Z")
    hx.store(tcdm, x)
    hw.store(tcdm, w)

    if n_noisy_cores:
        original = hci.wide_line_cycle

        def noisy_wide_cycle(*args, **kwargs):
            hci.submit_log_requests(
                [CoreRequest(initiator=i, addr=tcdm.base + 4 * (i % 9))
                 for i in range(n_noisy_cores)]
            )
            return original(*args, **kwargs)

        hci.wide_line_cycle = noisy_wide_cycle

    result = engine.run_job(MatmulJob.from_handles(hx, hw, hz))
    return {
        "noisy_cores": n_noisy_cores,
        "max_wide_streak": max_wide_streak,
        "cycles": result.cycles,
        "stalls": result.streamer.stall_cycles,
        "macs_per_cycle": result.macs_per_cycle,
    }


def test_ablation_core_contention(benchmark):
    def sweep():
        return [_run_with_traffic(n, max_wide_streak=4) for n in (0, 2, 4, 8)]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_series(
        "Ablation - accelerator slowdown under concurrent core traffic",
        ["noisy cores", "cycles", "wide-port stalls", "MAC/cycle"],
        [(r["noisy_cores"], r["cycles"], r["stalls"], r["macs_per_cycle"])
         for r in records],
    )

    quiet, *_, worst = records
    record_info(benchmark, {
        "quiet_cycles": quiet["cycles"],
        "worst_cycles": worst["cycles"],
        "slowdown": worst["cycles"] / quiet["cycles"],
    })

    assert worst["cycles"] >= quiet["cycles"]
    # The starvation-free rotation bounds the slowdown: the wide port gets at
    # least max_wide_streak of every (max_wide_streak + 1) contended cycles.
    assert worst["cycles"] / quiet["cycles"] < 1.4


def test_ablation_rotation_depth(benchmark):
    """A shorter wide-port streak protects the cores but slows the accelerator."""
    def sweep():
        return [_run_with_traffic(8, max_wide_streak=streak)
                for streak in (1, 2, 4, 8)]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_series(
        "Ablation - HCI rotation depth under full core contention",
        ["max wide streak", "cycles", "wide-port stalls"],
        [(r["max_wide_streak"], r["cycles"], r["stalls"]) for r in records],
    )

    cycles = [r["cycles"] for r in records]
    record_info(benchmark, {"cycles_by_streak": cycles})
    # More consecutive cycles granted to the accelerator -> fewer total cycles.
    assert cycles == sorted(cycles, reverse=True)
