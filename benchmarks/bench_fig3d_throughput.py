"""Fig. 3d -- throughput at maximum cluster frequency vs. matrix size.

Paper reference: RedMulE reaches 31.6 MAC/cycle (98 % utilisation), i.e.
21.1 GMAC/s = 42 GFLOPS at 666 MHz / 0.80 V, and throughput drops for small
matrices because of the control overhead.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig3 import throughput_sweep


def test_fig3d_throughput_sweep(benchmark):
    records = benchmark(throughput_sweep)

    print_series(
        "Fig. 3d - throughput at 666 MHz vs square matrix size",
        ["size", "MAC/cycle", "utilisation", "GMAC/s", "GFLOPS"],
        [
            (r["size"], r["macs_per_cycle"], r["utilisation"],
             r["throughput_gmacs"], r["throughput_gflops"])
            for r in records
        ],
    )

    peak = records[-1]
    record_info(benchmark, {
        "peak_macs_per_cycle": peak["macs_per_cycle"],
        "peak_gmacs": peak["throughput_gmacs"],
        "peak_gflops": peak["throughput_gflops"],
        "paper_peak_macs_per_cycle": 31.6,
        "paper_peak_gmacs": 21.1,
        "paper_peak_gflops": 42,
    })

    throughputs = [r["macs_per_cycle"] for r in records]
    assert throughputs == sorted(throughputs)
    assert peak["macs_per_cycle"] > 31.0
    assert abs(peak["throughput_gflops"] - 42.0) / 42.0 < 0.03
