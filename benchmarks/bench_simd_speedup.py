"""Benchmark -- bit-exact engine throughput: scalar oracle vs SIMD backend.

Not a paper figure, but the acceptance bar of the array-oriented arithmetic
refactor: cycle-accurate *bit-exact* runs must get at least 5x cheaper in
wall-clock when the engine evaluates whole row-vectors through the guarded
SIMD kernels (`exact-simd`) instead of one pure-Python `fma16` per element
(`exact`).  The comparison runs the engine-eligible Fig. 4a sweep shapes on
both backends, asserts the speedup, and re-checks that the two backends left
bit-identical result images in the TCDM (the speed must never cost a bit).
"""

import time

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig4 import DEFAULT_HW_SW_SIZES
from repro.farm import DEFAULT_ENGINE_MACS_THRESHOLD, config_key, run_functional_job
from repro.redmule.config import RedMulEConfig

#: Engine-eligible subset of the Fig. 4a square sweep.
SHAPES = [
    (size, size, size)
    for size in DEFAULT_HW_SW_SIZES
    if size ** 3 <= DEFAULT_ENGINE_MACS_THRESHOLD
]

#: Required wall-clock advantage of exact-simd over the scalar exact oracle.
MIN_SPEEDUP = 5.0


def _run(backend, shape):
    key = config_key(RedMulEConfig.reference())
    start = time.perf_counter()
    cycles, z_image = run_functional_job(key, *shape, False, backend,
                                         seed=shape[0])
    elapsed = time.perf_counter() - start
    return elapsed, cycles, z_image


def test_exact_simd_speedup(benchmark):
    def run_all():
        rows = []
        for shape in SHAPES:
            exact_s, exact_cycles, exact_bits = _run("exact", shape)
            simd_s, simd_cycles, simd_bits = _run("exact-simd", shape)
            assert simd_bits == exact_bits, f"bit mismatch on {shape}"
            assert simd_cycles == exact_cycles
            rows.append((shape, exact_cycles, exact_s, simd_s,
                         exact_s / simd_s))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_series(
        "Bit-exact engine wall-clock - scalar oracle vs SIMD backend",
        ["shape (M,N,K)", "cycles", "exact [s]", "exact-simd [s]", "speedup"],
        [(str(shape), cycles, f"{exact_s:.3f}", f"{simd_s:.3f}",
          f"{speedup:.2f}x")
         for shape, cycles, exact_s, simd_s, speedup in rows],
    )

    total_exact = sum(row[2] for row in rows)
    total_simd = sum(row[3] for row in rows)
    overall = total_exact / total_simd
    record_info(benchmark, {
        "overall_speedup": overall,
        "per_shape_speedup": {str(r[0]): r[4] for r in rows},
    })
    assert overall >= MIN_SPEEDUP, (
        f"exact-simd speedup {overall:.2f}x below the required "
        f"{MIN_SPEEDUP:.1f}x"
    )
