"""Farm speedup benchmark -- cached batch execution vs. direct serial runs.

The paper's sweeps re-run the same GEMM shapes over and over (repeated sizes
across figures, repeated layer shapes across training passes and batch
sizes).  This benchmark times such a repeated-shape sweep twice:

* **direct** -- every job simulated serially through a fresh cycle-accurate
  engine, the pre-farm status quo;
* **farm** -- the same jobs submitted as one batch to a serial
  :class:`~repro.farm.SimulationFarm`, which simulates each distinct shape
  once and serves every repeat from the shape-keyed timing cache.

Both paths must produce identical cycle counts; the farm must be at least
3x faster on the cache-hit path (in practice it approaches the repeat
factor, since a hit costs a dictionary lookup).
"""

import time

from benchmarks.conftest import print_series, record_info
from repro.farm import BACKEND_ENGINE, SimulationFarm
from repro.farm.workers import simulate_engine_timing
from repro.farm.cache import config_key
from repro.redmule.config import RedMulEConfig
from repro.redmule.job import MatmulJob

#: Distinct GEMM shapes of the sweep (small enough for the engine backend).
SWEEP_SHAPES = [(8, 16, 16), (16, 16, 16), (13, 7, 5), (8, 64, 16)]

#: How many times the sweep repeats each shape (Fig. 3c/3d/4a-style reuse).
REPEATS = 6


def _sweep_jobs():
    return [
        MatmulJob(x_addr=0, w_addr=0, z_addr=0, m=m, n=n, k=k)
        for _ in range(REPEATS)
        for (m, n, k) in SWEEP_SHAPES
    ]


def _run_direct(jobs):
    """Status quo: one serial cycle-accurate simulation per job."""
    key = config_key(RedMulEConfig.reference())
    return [
        simulate_engine_timing(key, job.m, job.n, job.k, job.accumulate, False)
        for job in jobs
    ]


def _run_farm(jobs):
    farm = SimulationFarm(backend=BACKEND_ENGINE, max_workers=1)
    results = farm.run(jobs)
    return farm, results


def test_farm_speedup_on_repeated_shape_sweep(benchmark):
    jobs = _sweep_jobs()

    # Min of two rounds per path guards the wall-clock ratio against a
    # scheduler stall landing in either single measurement.
    direct_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        direct_records = _run_direct(jobs)
        direct_seconds = min(direct_seconds, time.perf_counter() - start)

    def run():
        return _run_farm(jobs)  # fresh farm per round: cold cache each time

    farm, results = benchmark.pedantic(run, rounds=2, iterations=1)
    farm_seconds = max(benchmark.stats.stats.min, 1e-9)
    speedup = direct_seconds / farm_seconds

    # Identical timing either way: the cache serves exact records.
    assert [result.cycles for result in results] == [
        record.cycles for record in direct_records
    ]
    hits = sum(result.cache_hit for result in results)
    assert hits == len(jobs) - len(SWEEP_SHAPES)
    assert farm.stats.engine_runs == len(SWEEP_SHAPES)

    print_series(
        "Farm speedup - repeated-shape sweep "
        f"({len(jobs)} jobs, {len(SWEEP_SHAPES)} distinct shapes)",
        ["path", "wall-clock [s]", "simulations", "cache hits"],
        [
            ("direct serial engine", f"{direct_seconds:.4f}", len(jobs), 0),
            ("simulation farm", f"{farm_seconds:.4f}",
             farm.stats.engine_runs, hits),
            ("speedup", f"{speedup:.1f}x", "-", "-"),
        ],
    )
    record_info(benchmark, {
        "direct_seconds": direct_seconds,
        "farm_seconds": farm_seconds,
        "speedup": speedup,
        "cache_hits": hits,
    })
    # Acceptance: at least 3x on the cache-hit path (approaches the repeat
    # factor of 6 minus the constant batch overhead).
    assert speedup >= 3.0


def test_farm_second_batch_is_pure_cache(benchmark):
    """Re-submitting a sweep costs only lookups: no simulation at all."""
    farm = SimulationFarm(backend=BACKEND_ENGINE, max_workers=1)
    jobs = _sweep_jobs()
    farm.run(jobs)  # warm the cache
    runs_after_warmup = farm.stats.engine_runs

    results = benchmark(farm.run, jobs)

    assert farm.stats.engine_runs == runs_after_warmup
    assert all(result.cache_hit for result in results)
    record_info(benchmark, {
        "jobs_per_batch": len(jobs),
        "engine_runs": farm.stats.engine_runs,
    })
