"""Ablation -- effect of the FMA pipeline depth P.

The paper fixes P = 3 (FPnew FP16 FMA with three internal registers).  This
ablation sweeps P to show the trade-off the designers faced: a deeper pipeline
enlarges the per-row output block (H * (P+1)), which increases the operand
buffers and the drain time of small jobs, but does not change the steady-state
throughput of the array.
"""

from benchmarks.conftest import print_series, record_info
from repro.power.area import AreaModel
from repro.redmule.config import RedMulEConfig
from repro.redmule.perf_model import RedMulEPerfModel


def _sweep(depths, size):
    records = []
    for pipeline_regs in depths:
        config = RedMulEConfig(height=4, length=8, pipeline_regs=pipeline_regs)
        perf = RedMulEPerfModel(config).estimate_gemm(size, size, size)
        small = RedMulEPerfModel(config).estimate_gemm(16, 16, 16)
        records.append(
            {
                "P": pipeline_regs,
                "block_k": config.block_k,
                "area_mm2": AreaModel(config).total(),
                "util_large": perf.utilisation,
                "util_small": small.utilisation,
            }
        )
    return records


def test_ablation_pipeline_depth(benchmark):
    records = benchmark(_sweep, (1, 2, 3, 5, 7), 256)

    print_series(
        "Ablation - FMA pipeline depth P (H=4, L=8)",
        ["P", "Z block width", "area mm2", "util (256^3)", "util (16^3)"],
        [
            (r["P"], r["block_k"], r["area_mm2"], r["util_large"], r["util_small"])
            for r in records
        ],
    )

    by_p = {r["P"]: r for r in records}
    record_info(benchmark, {
        "util_large_p3": by_p[3]["util_large"],
        "util_small_p1": by_p[1]["util_small"],
        "util_small_p7": by_p[7]["util_small"],
    })

    # Large jobs stay efficient for every depth (the dips come from the
    # 256-column matrix not dividing evenly into (P+1)*H-wide blocks); the
    # paper's P=3 divides it exactly and sits above 95 %.  Small jobs prefer
    # shallow pipelines because the drain and the block granularity shrink.
    assert all(r["util_large"] > 0.85 for r in records)
    assert by_p[3]["util_large"] > 0.95
    assert by_p[1]["util_small"] > by_p[7]["util_small"]
    # Area grows with P (more pipeline registers and wider buffers).
    areas = [r["area_mm2"] for r in records]
    assert areas == sorted(areas)
