#!/usr/bin/env python3
"""Benchmark-regression gate: compare BENCH_*.json results against baselines.

CI runs the smoke benchmarks with ``BENCH_RESULTS_DIR`` set (making each
benchmark drop a ``BENCH_<name>.json`` with its headline metrics and
wall-clock stats, see ``benchmarks/conftest.py``) and then calls this script
to diff the fresh results against the baselines committed under
``benchmarks/baselines/``.  The build fails when

* a metric regresses beyond its threshold -- more than 20 % by default for
  deterministic metrics (cycle counts, errors, point counts), with a
  separate, looser default for wall-clock metrics because shared CI runners
  are noisy;
* a baseline metric disappears from the fresh results; or
* a baseline file has no fresh counterpart at all.

Direction is inferred from the metric name: ``rate`` / ``speedup`` / ``hit``
/ ``util`` / ``throughput`` / ``gflops`` / ``per_second`` metrics are
higher-is-better; deterministic counts (point/job/frontier sizes) are gated
in *both* directions, because a collapsing frontier or vanishing validation
coverage is as much a regression as growth; everything else (cycles,
errors, wall-clock seconds) is lower-is-better.  New metrics without a
baseline are reported informationally; refreshing the baselines is one
command (see the README's "updating the bench baselines").

Significant *improvements* (beyond the same threshold, in the good
direction) never fail the build, but they are listed in their own section
so a baseline that has drifted far below current performance gets
refreshed deliberately -- a stale baseline is a mute regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Default allowed relative regression for deterministic metrics.
DEFAULT_THRESHOLD = 0.20

#: Default allowed relative regression for wall-clock metrics: shared CI
#: runners jitter far beyond 20 %, so the wall gate only catches
#: order-of-magnitude slowdowns unless tightened explicitly.
DEFAULT_WALL_THRESHOLD = 2.0

#: Name fragments marking a metric as higher-is-better.
HIGHER_BETTER_MARKERS = ("rate", "speedup", "hit", "util", "throughput",
                         "gflops", "per_second")

#: Name fragments marking a metric as a deterministic *count* -- a quantity
#: where movement in either direction is suspicious (a shrinking frontier or
#: vanishing validated-job coverage is as much a regression as growth).
COUNT_MARKERS = ("n_points", "frontier_size", "validated_jobs", "requests",
                 "n_jobs", "simulated_macs", "simulated_cycles")

#: Name fragments marking a metric as host wall-clock seconds.
WALL_CLOCK_MARKERS = ("wall_clock", "_wall_s")


@dataclass(frozen=True)
class Comparison:
    """Outcome of one metric comparison."""

    bench: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    #: Relative change, oriented so positive = regression.
    regression: Optional[float]
    limit: Optional[float]
    ok: bool
    note: str = ""


def metric_is_higher_better(name: str) -> bool:
    """Infer the optimisation direction of a metric from its name."""
    lowered = name.lower()
    return any(marker in lowered for marker in HIGHER_BETTER_MARKERS)


def metric_is_count(name: str) -> bool:
    """True for deterministic counts gated in *both* directions."""
    lowered = name.lower()
    return any(marker in lowered for marker in COUNT_MARKERS)


def metric_is_wall_clock(name: str) -> bool:
    """True for metrics measured in host seconds (noisy on shared CI)."""
    lowered = name.lower()
    return any(marker in lowered for marker in WALL_CLOCK_MARKERS)


def compare_metrics(
    bench: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> List[Comparison]:
    """Compare one benchmark's metric dicts; every baseline metric is gated."""
    comparisons: List[Comparison] = []
    for name in sorted(baseline):
        base = baseline[name]
        limit = wall_threshold if metric_is_wall_clock(name) else threshold
        if name not in current:
            comparisons.append(Comparison(
                bench=bench, metric=name, baseline=base, current=None,
                regression=None, limit=limit, ok=False,
                note="metric missing from fresh results",
            ))
            continue
        value = current[name]
        if base == 0:
            # No relative scale: only flag a lower-is-better metric that
            # became nonzero (0 cycles/errors growing is a real regression).
            regressed = value > 0 and not metric_is_higher_better(name)
            comparisons.append(Comparison(
                bench=bench, metric=name, baseline=base, current=value,
                regression=None, limit=limit, ok=not regressed,
                note="zero baseline",
            ))
            continue
        if metric_is_count(name):
            # Counts are deterministic and direction-neutral: a collapsing
            # frontier or vanishing validation coverage regresses exactly
            # like uncontrolled growth.
            regression = abs(value - base) / abs(base)
        elif metric_is_higher_better(name):
            regression = (base - value) / abs(base)
        else:
            regression = (value - base) / abs(base)
        comparisons.append(Comparison(
            bench=bench, metric=name, baseline=base, current=value,
            regression=regression, limit=limit, ok=regression <= limit,
        ))
    for name in sorted(set(current) - set(baseline)):
        comparisons.append(Comparison(
            bench=bench, metric=name, baseline=None, current=current[name],
            regression=None, limit=None, ok=True, note="no baseline (new)",
        ))
    return comparisons


def _load(path: str) -> Dict[str, float]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics", {})
    return {name: float(value) for name, value in metrics.items()}


def compare_directories(
    results_dir: str,
    baselines_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> List[Comparison]:
    """Compare every committed baseline file against the fresh results."""
    baselines = sorted(name for name in os.listdir(baselines_dir)
                       if name.startswith("BENCH_") and name.endswith(".json"))
    if not baselines:
        raise SystemExit(f"error: no BENCH_*.json baselines in {baselines_dir}")
    comparisons: List[Comparison] = []
    for filename in baselines:
        bench = filename[len("BENCH_"):-len(".json")]
        baseline = _load(os.path.join(baselines_dir, filename))
        fresh_path = os.path.join(results_dir, filename)
        if not os.path.exists(fresh_path):
            comparisons.append(Comparison(
                bench=bench, metric="<file>", baseline=None, current=None,
                regression=None, limit=None, ok=False,
                note="benchmark produced no fresh result file",
            ))
            continue
        comparisons.extend(compare_metrics(
            bench, baseline, _load(fresh_path),
            threshold=threshold, wall_threshold=wall_threshold,
        ))
    return comparisons


def _format(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def significant_improvements(
        comparisons: List[Comparison]) -> List[Comparison]:
    """Comparisons that *beat* their baseline by more than the threshold.

    A negative oriented regression beyond the limit means the metric
    improved further than the gate would have tolerated as a loss.
    Count-gated metrics never appear here: their regression is an absolute
    deviation, so any large move already fails the build.  Lower-is-better
    wall-clock metrics cannot trip the default 2.0 wall limit (they bottom
    out at -100 %); the section exists mainly for budget-style floors
    (req/s, hit rates) left far below current performance.
    """
    return [item for item in comparisons
            if item.ok and item.regression is not None
            and item.limit is not None and item.regression < -item.limit]


def render(comparisons: List[Comparison]) -> str:
    """Fixed-width report of every comparison, failures marked."""
    header = (f"{'bench':28} {'metric':26} {'baseline':>12} "
              f"{'current':>12} {'change':>9} {'limit':>7}  status")
    lines = [header, "-" * len(header)]
    for item in comparisons:
        change = ("-" if item.regression is None
                  else f"{100 * item.regression:+.1f}%")
        limit = "-" if item.limit is None else f"{100 * item.limit:.0f}%"
        status = "ok" if item.ok else "FAIL"
        if item.note:
            status += f" ({item.note})"
        lines.append(
            f"{item.bench:28} {item.metric:26} {_format(item.baseline):>12} "
            f"{_format(item.current):>12} {change:>9} {limit:>7}  {status}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/compare_baselines.py",
        description="Fail when fresh BENCH_*.json results regress against "
                    "the committed baselines.",
    )
    parser.add_argument("results_dir",
                        help="directory holding the fresh BENCH_*.json files")
    parser.add_argument("baselines_dir", nargs="?",
                        default=os.path.join(os.path.dirname(__file__),
                                             "baselines"),
                        help="directory of committed baselines "
                             "(default: benchmarks/baselines)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative regression for deterministic "
                             "metrics (default: 0.20)")
    parser.add_argument("--wall-threshold", type=float,
                        default=DEFAULT_WALL_THRESHOLD,
                        help="allowed relative regression for wall-clock "
                             "metrics (default: 2.0 -- CI runners are noisy)")
    args = parser.parse_args(argv)

    comparisons = compare_directories(
        args.results_dir, args.baselines_dir,
        threshold=args.threshold, wall_threshold=args.wall_threshold,
    )
    print(render(comparisons))
    improvements = significant_improvements(comparisons)
    if improvements:
        print(f"\n{len(improvements)} significant improvement(s) beyond "
              "threshold (informational, not a failure):")
        for item in improvements:
            print(f"  {item.bench}.{item.metric}: "
                  f"{_format(item.baseline)} -> {_format(item.current)} "
                  f"({100 * item.regression:+.1f}%)")
        print("  consider refreshing benchmarks/baselines so the gate "
              "tracks the new level (see README: updating the bench "
              "baselines)")
    failures = [item for item in comparisons if not item.ok]
    if failures:
        print(f"\n{len(failures)} regression(s) beyond threshold; "
              "if intentional, refresh benchmarks/baselines "
              f"(see README: updating the bench baselines)")
        return 1
    print(f"\nall {len(comparisons)} comparisons within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
