"""Benchmark -- trace-compiled engine: record once, replay vectorized.

The acceptance bar of the trace-compilation refactor: on fig3/fig4-class
multi-tile jobs whose schedules are already recorded, the ``trace`` backend
must be at least 20x faster in wall-clock than the event-stepped
``exact-simd`` engine while staying **bit-identical** -- same TCDM result
image, same cycle counts, and (checked at the data-plane level) the same
accumulated IEEE exception flags as the scalar oracle.

The job data changes every repetition (fresh random seeds) while the traces
are reused, demonstrating the core property the refactor rests on: the cycle
schedule is data-independent, only the data plane needs to run.
"""

import time

import numpy as np

from benchmarks.conftest import print_series, record_info
from repro.farm import config_key, run_functional_job
from repro.fp.flags import ExceptionFlags
from repro.fp.formats import fma_bits, get_format
from repro.redmule.config import RedMulEConfig
from repro.redmule.trace import replay_dataplane, reset_shared_trace_stores

#: Fig. 3c/3d & Fig. 4a-class square multi-tile job (within the farm's
#: engine-eligibility threshold) measured for the headline speedup.
SHAPE = (64, 64, 64)

#: Warm repetitions per backend; every repetition uses fresh operand data.
REPEATS = 4

#: Required warm-replay wall-clock advantage over the event-stepped engine.
MIN_SPEEDUP = 20.0

FORMATS = ["fp16", "bf16", "fp8-e4m3", "fp8-e5m2"]


def _run(arithmetic, seed, fmt="fp16"):
    key = config_key(RedMulEConfig(format=fmt))
    start = time.perf_counter()
    cycles, z_image = run_functional_job(key, *SHAPE, False, arithmetic,
                                         seed=seed)
    return time.perf_counter() - start, cycles, z_image


def test_trace_replay(benchmark):
    def run_all():
        reset_shared_trace_stores()
        _run("trace", seed=99)  # cold run records the schedules
        rows = []
        for rep in range(REPEATS):
            simd_s, simd_cycles, simd_bits = _run("exact-simd", seed=rep)
            trace_s, trace_cycles, trace_bits = _run("trace", seed=rep)
            assert trace_bits == simd_bits, f"bit mismatch at seed {rep}"
            assert trace_cycles == simd_cycles
            rows.append((rep, simd_cycles, simd_s, trace_s,
                         simd_s / trace_s))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_series(
        f"Trace replay vs event-stepped engine -- {SHAPE} fp16, fresh data "
        "per repetition",
        ["rep", "cycles", "exact-simd [s]", "trace [s]", "speedup"],
        [(rep, cycles, f"{simd_s:.3f}", f"{trace_s:.4f}", f"{speedup:.1f}x")
         for rep, cycles, simd_s, trace_s, speedup in rows],
    )

    total_simd = sum(row[2] for row in rows)
    total_trace = sum(row[3] for row in rows)
    overall = total_simd / total_trace
    record_info(benchmark, {
        "replay_speedup": overall,
        "engine_cycles": rows[0][1],
        "bit_mismatches": 0,
    })
    assert overall >= MIN_SPEEDUP, (
        f"trace replay speedup {overall:.2f}x below the required "
        f"{MIN_SPEEDUP:.1f}x"
    )


def test_trace_replay_bit_match_all_formats(benchmark):
    """Warm trace replay leaves bit-identical TCDM images and cycle counts
    in every supported element format."""
    shape = (16, 40, 24)

    def run_all():
        reset_shared_trace_stores()
        mismatches = 0
        rows = []
        for fmt in FORMATS:
            key = config_key(RedMulEConfig(format=fmt))
            simd_cycles, simd_bits = run_functional_job(
                key, *shape, False, "exact-simd", seed=7)
            run_functional_job(key, *shape, False, "trace", seed=3)  # record
            trace_cycles, trace_bits = run_functional_job(
                key, *shape, False, "trace", seed=7)  # warm replay
            match = trace_bits == simd_bits and trace_cycles == simd_cycles
            mismatches += 0 if match else 1
            rows.append((fmt, simd_cycles, trace_cycles, match))
        return mismatches, rows

    mismatches, rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_series(
        f"Trace replay bit match per element format -- {shape}",
        ["format", "exact-simd cycles", "trace cycles", "bit-identical"],
        [(fmt, sc, tc, "yes" if ok else "NO")
         for fmt, sc, tc, ok in rows],
    )
    record_info(benchmark, {"format_bit_mismatches": mismatches,
                            "formats_checked": len(rows)})
    assert mismatches == 0


def test_replay_dataplane_flag_parity(benchmark):
    """The vectorized data plane accumulates the same IEEE exception flags
    as the scalar FMA chain (checked on an overflow/inexact-rich batch)."""
    fmt = get_format("fp16")
    rng = np.random.default_rng(13)
    rows_n, cols_n, steps = 4, 8, 16
    x_bits = rng.integers(0, 1 << 16, (2, rows_n, steps), dtype=np.uint32)
    w_bits = rng.integers(0, 1 << 16, (2, steps, cols_n), dtype=np.uint32)
    acc_bits = np.zeros((2, rows_n, cols_n), dtype=np.uint32)
    mask = np.ones(steps, dtype=bool)

    def run():
        flags = ExceptionFlags()
        out = replay_dataplane(x_bits, w_bits, acc_bits, mask, fmt,
                               flags=flags)
        return out, flags

    out, flags = benchmark.pedantic(run, rounds=1, iterations=1)

    want_flags = ExceptionFlags()
    for t in range(2):
        for r in range(rows_n):
            for c in range(cols_n):
                acc = 0
                for s in range(steps):
                    acc = fma_bits(int(x_bits[t, r, s]),
                                   int(w_bits[t, s, c]), acc, fmt,
                                   flags=want_flags)
                assert int(out[t, r, c]) == acc
    assert flags.to_fflags() == want_flags.to_fflags()
    record_info(benchmark, {
        "flag_parity": 1.0 if flags.to_fflags() == want_flags.to_fflags()
        else 0.0,
    })
