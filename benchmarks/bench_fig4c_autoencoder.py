"""Fig. 4c -- TinyMLPerf AutoEncoder training at batch size 1.

Paper reference: one forward + backward pass of the MLPerf-Tiny anomaly
detection auto-encoder at batch 1 runs ~2.6x faster on RedMulE than on the
8-core software baseline, with the backward pass benefitting much more than
the forward pass (whose GEMMs have K = batch = 1 and cannot fill the
accelerator's output rows).
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig4 import autoencoder_training


def test_fig4c_autoencoder_batch1(benchmark):
    outcome = benchmark(autoencoder_training, 1)

    print_series(
        "Fig. 4c - AutoEncoder training step, batch = 1",
        ["pass", "HW cycles", "SW cycles", "speedup", "MACs"],
        [
            ("forward", outcome["forward"]["hw_cycles"],
             outcome["forward"]["sw_cycles"], outcome["forward"]["speedup"],
             outcome["forward"]["macs"]),
            ("backward", outcome["backward"]["hw_cycles"],
             outcome["backward"]["sw_cycles"], outcome["backward"]["speedup"],
             outcome["backward"]["macs"]),
            ("total", outcome["hw_cycles"], outcome["sw_cycles"],
             outcome["speedup"], outcome["total_macs"]),
        ],
    )

    record_info(benchmark, {
        "speedup_total": outcome["speedup"],
        "speedup_forward": outcome["forward"]["speedup"],
        "speedup_backward": outcome["backward"]["speedup"],
        "paper_speedup_total": 2.6,
    })

    assert abs(outcome["speedup"] - 2.6) / 2.6 < 0.1
    assert outcome["backward"]["speedup"] > outcome["forward"]["speedup"]


def test_fig4c_per_layer_breakdown(benchmark):
    """Per-GEMM cycle breakdown (the per-layer bars of the figure)."""
    outcome = benchmark(autoencoder_training, 1)

    rows = []
    for name in sorted(outcome["per_gemm_hw"]):
        hw = outcome["per_gemm_hw"][name]
        sw = outcome["per_gemm_sw"][name]
        rows.append((name, hw, sw, sw / hw))
    print_series(
        "Fig. 4c (per-GEMM) - AutoEncoder batch = 1",
        ["gemm", "HW cycles", "SW cycles", "speedup"],
        rows,
    )

    weight_gradients = [row for row in rows if "-dw" in row[0]]
    forwards = [row for row in rows if "-fwd" in row[0]]
    record_info(benchmark, {
        "n_gemms": len(rows),
        "best_dw_speedup": max(row[3] for row in weight_gradients),
        "best_fwd_speedup": max(row[3] for row in forwards),
    })
    # Weight-gradient GEMMs (K = layer width) must beat forward GEMMs (K = 1).
    assert max(r[3] for r in weight_gradients) > max(r[3] for r in forwards)
