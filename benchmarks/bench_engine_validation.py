"""Validation benchmark -- cycle-accurate engine vs. analytical model.

Not a paper figure, but the foundation every figure rests on: the analytical
performance model used for the large sweeps must track the cycle-accurate
engine.  This benchmark simulates a set of GEMM shapes on the engine, compares
both cycle counts, and reports the worst relative error.  It also measures the
simulation speed of the engine itself (simulated MACs per host second), which
is the practical limit on how large a workload can be run cycle by cycle.
"""

from benchmarks.conftest import print_series, record_info
from repro.farm import config_key, run_functional_job
from repro.fp.vector import random_fp16_matrix
from repro.interco.hci import Hci, HciConfig
from repro.mem.layout import MemoryAllocator
from repro.mem.tcdm import Tcdm
from repro.redmule.config import RedMulEConfig
from repro.redmule.engine import RedMulE
from repro.redmule.job import MatmulJob
from repro.redmule.perf_model import RedMulEPerfModel

SHAPES = [(8, 16, 16), (16, 16, 16), (8, 64, 16), (13, 7, 5), (24, 100, 40),
          (32, 32, 32), (8, 256, 16)]


def _simulate(shape):
    m, n, k = shape
    tcdm = Tcdm()
    hci = Hci(tcdm, HciConfig())
    engine = RedMulE(RedMulEConfig.reference(), hci, exact=False)
    allocator = MemoryAllocator(tcdm.base, tcdm.size)
    hx = allocator.alloc_matrix(m, n, "X")
    hw = allocator.alloc_matrix(n, k, "W")
    hz = allocator.alloc_matrix(m, k, "Z")
    hx.store(tcdm, random_fp16_matrix(m, n, scale=0.25, seed=m))
    hw.store(tcdm, random_fp16_matrix(n, k, scale=0.25, seed=k))
    return engine.run_job(MatmulJob.from_handles(hx, hw, hz))


def test_perf_model_tracks_cycle_accurate_engine(benchmark):
    model = RedMulEPerfModel(RedMulEConfig.reference())

    def run_all():
        rows = []
        for shape in SHAPES:
            measured = _simulate(shape)
            estimate = model.estimate_gemm(*shape)
            error = (estimate.cycles - measured.cycles) / measured.cycles
            rows.append((shape, measured.cycles, estimate.cycles, error))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_series(
        "Engine validation - cycle-accurate vs analytical model",
        ["shape (M,N,K)", "engine cycles", "model cycles", "relative error"],
        [(str(shape), cycles, estimate, error)
         for shape, cycles, estimate, error in rows],
    )

    worst = max(abs(error) for *_, error in rows)
    record_info(benchmark, {"worst_relative_error": worst})
    assert worst < 0.05


def test_engine_simulation_speed(benchmark):
    """Host-side cost of cycle-accurate simulation (simulated MAC per call)."""
    result = benchmark(_simulate, (32, 32, 32))
    record_info(benchmark, {
        "simulated_cycles": result.cycles,
        "simulated_macs": result.total_macs,
    })
    assert result.total_macs == 32 ** 3


def test_arithmetic_backends_bit_match(benchmark):
    """Quick-bench smoke: on a small shape, every arithmetic backend must
    leave the same cycle count and the bit-exact backends the same TCDM
    image.  Fails loudly on any bit mismatch between `exact` and
    `exact-simd` (CI runs this as the backend smoke step)."""
    shape = (13, 20, 17)
    key = config_key(RedMulEConfig.reference())

    def run_all():
        return {
            backend: run_functional_job(key, *shape, False, backend, seed=5)
            for backend in ("exact", "exact-simd", "fast")
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    exact_cycles, exact_bits = outcomes["exact"]
    simd_cycles, simd_bits = outcomes["exact-simd"]
    fast_cycles, fast_bits = outcomes["fast"]
    assert simd_bits == exact_bits, "exact-simd diverged from the exact oracle"
    assert simd_cycles == exact_cycles == fast_cycles
    record_info(benchmark, {
        "shape": str(shape),
        "cycles": exact_cycles,
        "fast_matches_exact": fast_bits == exact_bits,
    })


def test_trace_replay_matches_event_stepped_engine(benchmark):
    """Trace-compiled replay cross-checked against the event-stepped engine
    in all four element formats: the worst difference between the two result
    images -- measured in bits -- must be exactly zero, and the replayed
    cycle counts must match exactly."""
    from repro.redmule.trace import reset_shared_trace_stores

    shape = (16, 40, 24)
    formats = ["fp16", "bf16", "fp8-e4m3", "fp8-e5m2"]

    def run_all():
        reset_shared_trace_stores()
        rows = []
        for fmt in formats:
            key = config_key(RedMulEConfig(format=fmt))
            simd_cycles, simd_bits = run_functional_job(
                key, *shape, False, "exact-simd", seed=21)
            run_functional_job(key, *shape, False, "trace", seed=8)  # record
            trace_cycles, trace_bits = run_functional_job(
                key, *shape, False, "trace", seed=21)  # warm replay
            diff_bits = sum(
                bin(a ^ b).count("1")
                for a, b in zip(simd_bits, trace_bits)
            )
            rows.append((fmt, simd_cycles, trace_cycles, diff_bits))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_series(
        f"Trace replay validation vs event-stepped engine -- {shape}",
        ["format", "engine cycles", "replay cycles", "differing bits"],
        rows,
    )
    worst = max(diff for *_, diff in rows)
    cycle_errors = sum(1 for _, sc, tc, _ in rows if sc != tc)
    record_info(benchmark, {
        "worst_bit_error": worst,
        "cycle_mismatches": cycle_errors,
    })
    assert worst == 0
    assert cycle_errors == 0
