"""Fig. 3b -- RedMulE / cluster power breakdown.

Paper reference: at 0.65 V / 476 MHz the cluster burns 43.5 mW; RedMulE
contributes 69 % of it and the TCDM banks + HCI 17.1 %.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig3 import cluster_power_breakdown, power_breakdown


def test_fig3b_redmule_power_breakdown(benchmark):
    breakdown = benchmark(power_breakdown)

    print_series(
        "Fig. 3b - RedMulE power breakdown (0.65 V, 476 MHz)",
        ["component", "power mW", "share %"],
        [(name, value, 100.0 * share) for name, value, share in breakdown.as_rows()],
    )
    record_info(benchmark, {
        "redmule_power_mw": breakdown.total,
        "paper_redmule_power_mw": 0.69 * 43.5,
    })

    assert abs(breakdown.total - 0.69 * 43.5) / (0.69 * 43.5) < 0.03
    assert breakdown.share("datapath (FMAs)") > 0.5


def test_fig3b_cluster_power_breakdown(benchmark):
    breakdown = benchmark(cluster_power_breakdown)

    print_series(
        "Fig. 3b (companion) - cluster power breakdown (0.65 V, 476 MHz)",
        ["component", "power mW", "share %"],
        [(name, value, 100.0 * share) for name, value, share in breakdown.as_rows()],
    )
    record_info(benchmark, {
        "cluster_power_mw": breakdown.total,
        "redmule_share": breakdown.share("RedMulE"),
        "memory_share": breakdown.share("TCDM + HCI"),
        "paper_cluster_power_mw": 43.5,
        "paper_redmule_share": 0.69,
        "paper_memory_share": 0.171,
    })

    assert abs(breakdown.total - 43.5) / 43.5 < 0.03
    assert abs(breakdown.share("RedMulE") - 0.69) < 0.01
    assert abs(breakdown.share("TCDM + HCI") - 0.171) < 0.01
