"""Fig. 4a -- HW vs. SW computational performance vs. the ideal machine.

Paper reference: RedMulE reaches 98.8 % of the ideal 32 MAC/cycle for large
workloads and introduces up to 22x speedup over the software baseline running
on the 8 RISC-V cores; the software baseline sits at a flat few percent of
the ideal.
"""

from benchmarks.conftest import print_series, record_info
from repro.experiments.fig4 import hw_vs_sw_sweep


def test_fig4a_hw_vs_sw_vs_ideal(benchmark):
    records = benchmark(hw_vs_sw_sweep)

    print_series(
        "Fig. 4a - HW and SW performance relative to the 32 MAC/cycle ideal",
        ["size", "HW cycles", "SW cycles", "HW frac of ideal",
         "SW frac of ideal", "speedup"],
        [
            (r["size"], r["hw_cycles"], r["sw_cycles"],
             r["hw_fraction_of_ideal"], r["sw_fraction_of_ideal"], r["speedup"])
            for r in records
        ],
    )

    peak_fraction = max(r["hw_fraction_of_ideal"] for r in records)
    peak_speedup = max(r["speedup"] for r in records)
    record_info(benchmark, {
        "peak_fraction_of_ideal": peak_fraction,
        "peak_speedup": peak_speedup,
        "paper_peak_fraction_of_ideal": 0.988,
        "paper_peak_speedup": 22.0,
    })

    assert peak_fraction > 0.97
    assert abs(peak_speedup - 22.0) / 22.0 < 0.05
    # Speedup grows monotonically with the problem size (larger matrices
    # amortise the accelerator's fixed overheads).
    speedups = [r["speedup"] for r in records]
    assert speedups == sorted(speedups)


def test_fig4a_cycle_accurate_spot_check(benchmark):
    """Cross-check one sweep point with the cycle-accurate engine instead of
    the analytical model (slower, so only one size is simulated here)."""
    from repro.cluster import PulpCluster
    from repro.fp.vector import random_fp16_matrix

    size = 64
    x = random_fp16_matrix(size, size, scale=0.25, seed=0)
    w = random_fp16_matrix(size, size, scale=0.25, seed=1)

    def run():
        cluster = PulpCluster()
        _, outcome = cluster.matmul(x, w)
        sw = cluster.software_matmul(size, size, size)
        return outcome.accelerator.cycles, sw.cycles

    hw_cycles, sw_cycles = benchmark(run)
    record_info(benchmark, {
        "size": size,
        "hw_cycles_cycle_accurate": hw_cycles,
        "sw_cycles": sw_cycles,
        "speedup": sw_cycles / hw_cycles,
    })
    assert sw_cycles / hw_cycles > 15
